package fault

import (
	"fmt"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/db"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/engine/wal"
	"tpccmodel/internal/rng"
	"tpccmodel/internal/tpcc"
)

// TortureConfig sizes a crash-torture campaign: for each of Seeds
// independent databases, Schedules crash schedules are executed — seeded
// concurrent TPC-C load under steady-state faults, a randomly timed
// device crash, power loss, recovery, and a full verification pass.
type TortureConfig struct {
	// BaseSeed derives every seed in the campaign.
	BaseSeed uint64
	// Seeds is the number of independent databases (≥1).
	Seeds int
	// Schedules is the number of crash schedules per seed (≥1).
	Schedules int
	// Txns is the number of transactions attempted per schedule.
	Txns int
	// Workers is the worker-goroutine count per schedule.
	Workers int

	// Warehouses/PageSize/BufferPages size each database instance.
	Warehouses  int
	PageSize    int
	BufferPages int

	// Faults sets steady-state fault probabilities during load phases.
	Faults Config
	// Policy is the retry policy workers run with.
	Policy db.RetryPolicy
	// Mix is the transaction mix (DefaultMix when zero).
	Mix tpcc.Mix
	// GroupCommit configures WAL commit batching for every database in
	// the campaign (zero value = one force per commit, the seed path).
	// The durability invariants checked per schedule are identical in
	// both modes: an acknowledged commit must survive any crash.
	GroupCommit wal.GroupConfig
}

// DefaultTortureConfig returns a small but complete campaign: 5 seeds ×
// 10 schedules exercises 50 distinct crash points.
func DefaultTortureConfig() TortureConfig {
	return TortureConfig{
		BaseSeed:    1,
		Seeds:       5,
		Schedules:   10,
		Txns:        400,
		Workers:     4,
		Warehouses:  1,
		PageSize:    1024,
		BufferPages: 256,
		Faults: Config{
			ReadErrProb:  0.002,
			WriteErrProb: 0.002,
			ForceErrProb: 0.002,
			BitFlipProb:  0.001,
		},
		Policy: db.DefaultRetryPolicy(),
		Mix:    tpcc.DefaultMix(),
	}
}

// ScheduleResult records one crash schedule's outcome.
type ScheduleResult struct {
	Seed     uint64
	Schedule int
	// MidRunCrash reports the crash fired during the load (vs. the
	// quiescent power loss every schedule ends with).
	MidRunCrash bool
	// Acked counts acknowledged transactions in this schedule.
	Acked int64
	// Retries/Sheds are the retry policy's counters for the schedule.
	Retries, Sheds int64
	// TruncatedBytes is the damaged log tail recovery discarded.
	TruncatedBytes int64
	// Violations lists every invariant this schedule broke (empty = pass).
	Violations []string
}

// Report aggregates a torture campaign.
type Report struct {
	Config    TortureConfig
	Schedules []ScheduleResult
	// Violations flattens every schedule violation with its provenance.
	Violations []string
	// MidRunCrashes counts schedules whose crash fired under load.
	MidRunCrashes int
	// Injector totals across all seeds.
	Faults Stats
	// Store totals across all seeds (checksum detections/repairs).
	Detected, Repaired int64
	// Probes counts directed-corruption probes; every one must be
	// detected and repaired for the campaign to pass.
	Probes int
}

// OK reports whether the campaign found no violations.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Summary renders a one-paragraph outcome.
func (r *Report) Summary() string {
	var acked, retries, sheds, trunc int64
	for _, s := range r.Schedules {
		acked += s.Acked
		retries += s.Retries
		sheds += s.Sheds
		trunc += s.TruncatedBytes
	}
	return fmt.Sprintf(
		"torture: %d seeds x %d schedules (%d mid-run crashes), %d acked txns, "+
			"%d retries, %d sheds; faults: %d read, %d write, %d force errs, "+
			"%d bit flips, %d torn, %d dropped writes; %d log bytes truncated; "+
			"checksums: %d detected, %d repaired (%d directed probes); violations: %d",
		r.Config.Seeds, r.Config.Schedules, r.MidRunCrashes, acked,
		retries, sheds,
		r.Faults.ReadErrs, r.Faults.WriteErrs, r.Faults.ForceErrs,
		r.Faults.BitFlips, r.Faults.TornWrites, r.Faults.DroppedWrites,
		trunc, r.Detected, r.Repaired, r.Probes, len(r.Violations))
}

// baseline holds the verified durable row counts a schedule starts from.
type baseline struct {
	orders, orderLines, history int64
}

func measure(d *db.DB) baseline {
	return baseline{
		orders:     d.Heap(core.Order).Live(),
		orderLines: d.Heap(core.OrderLine).Live(),
		history:    d.Heap(core.History).Live(),
	}
}

// Torture runs the campaign. It returns an error only for setup failures
// (bad config, load errors); invariant violations land in the Report.
func Torture(cfg TortureConfig) (*Report, error) {
	if cfg.Seeds < 1 || cfg.Schedules < 1 {
		return nil, fmt.Errorf("fault: need at least one seed and one schedule")
	}
	if cfg.Mix.Validate() != nil {
		cfg.Mix = tpcc.DefaultMix()
	}
	if cfg.Policy.MaxAttempts == 0 {
		cfg.Policy = db.DefaultRetryPolicy()
	}
	rep := &Report{Config: cfg}
	for s := 0; s < cfg.Seeds; s++ {
		seed := cfg.BaseSeed + uint64(s)
		if err := tortureSeed(cfg, seed, rep); err != nil {
			return rep, fmt.Errorf("fault: seed %d: %w", seed, err)
		}
	}
	return rep, nil
}

func tortureSeed(cfg TortureConfig, seed uint64, rep *Report) error {
	seedRng := rng.New(seed)
	disk := storage.NewMemDisk()
	inj := New(disk, seedRng.Uint64())
	inj.SetConfig(cfg.Faults)
	d, err := db.OpenWith(db.Config{
		Warehouses:  cfg.Warehouses,
		PageSize:    cfg.PageSize,
		BufferPages: cfg.BufferPages,
	}, db.Options{Disk: inj, LogHook: inj, GroupCommit: cfg.GroupCommit})
	if err != nil {
		return err
	}
	// Load on a healthy device, then checkpoint: the initial population
	// is installed without logging, so it must be durable before the
	// first crash.
	if err := d.Load(seed); err != nil {
		return err
	}
	if err := d.Checkpoint(); err != nil {
		return err
	}
	base := measure(d)

	// estOps adapts the crash fuse to the device traffic one schedule
	// actually generates, so crashes land inside the run.
	var estOps int64
	for sched := 0; sched < cfg.Schedules; sched++ {
		res := ScheduleResult{Seed: seed, Schedule: sched}
		violate := func(format string, args ...any) {
			v := fmt.Sprintf(format, args...)
			res.Violations = append(res.Violations, v)
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("seed=%d schedule=%d: %s", seed, sched, v))
		}

		opsBefore := inj.Stats().Ops()
		var fuse int64
		if estOps > 0 {
			fuse = 1 + seedRng.Int63n(estOps)
		} else {
			fuse = 20 + seedRng.Int63n(2000)
		}
		inj.SetEnabled(true)
		inj.ScheduleCrash(fuse)

		st, runErr := db.RunConcurrentPolicy(d, seedRng.Uint64(), cfg.Mix,
			cfg.Txns, cfg.Workers, cfg.Policy)
		inj.DisarmCrash()
		if runErr != nil {
			violate("run failed fatally: %v", runErr)
		}
		res.MidRunCrash = st.Crashed
		if st.Crashed {
			rep.MidRunCrashes++
		} else if used := inj.Stats().Ops() - opsBefore; used > 0 {
			// The fuse outlived the run: remember the traffic so the
			// next schedule's crash lands mid-run.
			estOps = used
		}
		res.Acked = st.Acknowledged()
		res.Retries = st.Retries
		res.Sheds = st.Sheds

		// Power loss: volatile buffers gone, unforced log tail damaged.
		// Recovery runs on a healthy, revived device.
		inj.SetEnabled(false)
		inj.Kill()
		if err := d.CrashPowerLoss(seedRng); err != nil {
			return err
		}
		inj.Revive()
		if err := d.Recover(); err != nil {
			violate("recovery failed: %v", err)
			return fmt.Errorf("unrecoverable: %v", res.Violations)
		}
		res.TruncatedBytes = d.RecoveryStats().TruncatedBytes

		// Verification: page integrity, TPC-C consistency, durability.
		vr, err := d.VerifyPages()
		if err != nil {
			violate("page verification failed: %v", err)
		} else if len(vr.Corrupt) > 0 {
			violate("unrecoverable pages after crash: %v", vr.Corrupt)
		}
		if err := d.CheckConsistency(); err != nil {
			violate("consistency: %v", err)
		}
		live := measure(d)
		ackedNO := st.Counts[core.TxnNewOrder]
		ackedPay := st.Counts[core.TxnPayment]
		slack := int64(cfg.Workers)
		if lo := base.orders + ackedNO; live.orders < lo {
			violate("lost acknowledged new-orders: %d orders live, want >= %d (base %d + acked %d)",
				live.orders, lo, base.orders, ackedNO)
		} else if hi := lo + slack; live.orders > hi {
			violate("phantom orders: %d live, want <= %d", live.orders, hi)
		}
		olPer := int64(tpcc.ItemsPerOrder)
		if lo := base.orderLines + ackedNO*olPer; live.orderLines < lo {
			violate("lost order-lines of acknowledged new-orders: %d live, want >= %d",
				live.orderLines, lo)
		} else if hi := lo + slack*olPer; live.orderLines > hi {
			violate("phantom order-lines: %d live, want <= %d", live.orderLines, hi)
		}
		if lo := base.history + ackedPay; live.history < lo {
			violate("lost acknowledged payments: %d history rows, want >= %d",
				live.history, lo)
		} else if hi := lo + slack; live.history > hi {
			violate("phantom history rows: %d live, want <= %d", live.history, hi)
		}
		base = live

		// Directed corruption probe: flip one durable bit and demand the
		// checksum layer detects and repairs it.
		if err := corruptionProbe(d, disk, seedRng, violate); err != nil {
			return err
		}
		rep.Probes++
		rep.Schedules = append(rep.Schedules, res)
	}
	fs := inj.Stats()
	rep.Faults.Reads += fs.Reads
	rep.Faults.Writes += fs.Writes
	rep.Faults.Forces += fs.Forces
	rep.Faults.ReadErrs += fs.ReadErrs
	rep.Faults.WriteErrs += fs.WriteErrs
	rep.Faults.ForceErrs += fs.ForceErrs
	rep.Faults.BitFlips += fs.BitFlips
	rep.Faults.TornWrites += fs.TornWrites
	rep.Faults.DroppedWrites += fs.DroppedWrites
	rep.Faults.Crashes += fs.Crashes
	ss := d.StoreStats()
	rep.Detected += ss.Detected
	rep.Repaired += ss.Repaired
	return nil
}

// corruptionProbe flips one bit of a random heap page's primary image on
// the raw device (behind the store's back) and verifies the checksum
// layer detects it and repairs from the journal mirror.
func corruptionProbe(d *db.DB, disk *storage.MemDisk, r *rng.RNG,
	violate func(string, ...any)) error {
	ids := d.Heap(core.Order).PageIDs()
	if len(ids) == 0 {
		return nil
	}
	id := ids[r.Int63n(int64(len(ids)))]
	phys := make([]byte, d.Config().PageSize+storage.ChecksumLen)
	if err := disk.Read(id, storage.AreaData, phys); err != nil {
		return err
	}
	bit := r.Int63n(int64(len(phys)) * 8)
	phys[bit/8] ^= 1 << uint(bit%8)
	if err := disk.Write(id, storage.AreaData, phys); err != nil {
		return err
	}
	before := d.StoreStats()
	vr, err := d.VerifyPages()
	if err != nil {
		violate("probe: verification failed: %v", err)
		return nil
	}
	if len(vr.Corrupt) > 0 {
		violate("probe: flipped bit on page %d unrecoverable: %v", id, vr.Corrupt)
	}
	after := d.StoreStats()
	if after.Detected <= before.Detected {
		violate("probe: flipped bit on page %d went undetected", id)
	}
	if after.Repaired <= before.Repaired {
		violate("probe: flipped bit on page %d not repaired from mirror", id)
	}
	return nil
}
