package fault

import (
	"bytes"
	"errors"
	"testing"

	"tpccmodel/internal/engine/storage"
)

func newFaultyStore(t *testing.T, seed uint64, pageSize int) (*Injector, *storage.Store) {
	t.Helper()
	inj := New(storage.NewMemDisk(), seed)
	s, err := storage.NewStoreOn(inj, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	return inj, s
}

func TestTransientErrorsAreTypedAndStopWhenDisabled(t *testing.T) {
	inj, s := newFaultyStore(t, 1, 256)
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	inj.SetConfig(Config{ReadErrProb: 1, WriteErrProb: 1})
	inj.SetEnabled(true)
	buf := make([]byte, 256)
	if err := s.Read(id, buf); !errors.Is(err, storage.ErrTransientIO) {
		t.Errorf("read = %v, want ErrTransientIO", err)
	}
	if err := s.Flush(id, buf); !errors.Is(err, storage.ErrTransientIO) {
		t.Errorf("flush = %v, want ErrTransientIO", err)
	}
	inj.SetEnabled(false)
	if err := s.Read(id, buf); err != nil {
		t.Errorf("read with faults disabled: %v", err)
	}
	st := inj.Stats()
	if st.ReadErrs != 1 || st.WriteErrs < 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCrashFuseKillsDeviceUntilRevive(t *testing.T) {
	inj, s := newFaultyStore(t, 2, 256)
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	inj.ScheduleCrash(1)
	if err := s.Read(id, buf); !errors.Is(err, storage.ErrCrashed) {
		t.Fatalf("fuse op = %v, want ErrCrashed", err)
	}
	if err := s.Flush(id, buf); !errors.Is(err, storage.ErrCrashed) {
		t.Errorf("post-crash op = %v, want ErrCrashed", err)
	}
	if !inj.Dead() {
		t.Error("device should be dead")
	}
	inj.Revive()
	if err := s.Read(id, buf); err != nil {
		t.Errorf("read after revive: %v", err)
	}
	if inj.Stats().Crashes != 1 {
		t.Errorf("crashes = %d, want 1", inj.Stats().Crashes)
	}
}

// TestCrashMidFlushIsAtomic crashes the device on each of the flush's two
// device writes (journal, then data) and checks the page always reads
// back as a complete image — the old or the new one, never a mix and
// never an unrecoverable checksum failure.
func TestCrashMidFlushIsAtomic(t *testing.T) {
	oldImg := bytes.Repeat([]byte{0x11}, 256)
	newImg := bytes.Repeat([]byte{0x22}, 256)
	for fuse := int64(1); fuse <= 2; fuse++ {
		for seed := uint64(0); seed < 8; seed++ {
			inj, s := newFaultyStore(t, seed, 256)
			id, err := s.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Flush(id, oldImg); err != nil {
				t.Fatal(err)
			}
			inj.ScheduleCrash(fuse)
			if err := s.Flush(id, newImg); !errors.Is(err, storage.ErrCrashed) {
				t.Fatalf("fuse=%d seed=%d: flush = %v, want ErrCrashed", fuse, seed, err)
			}
			inj.Revive()
			got := make([]byte, 256)
			if err := s.Read(id, got); err != nil {
				t.Fatalf("fuse=%d seed=%d: read after crash: %v", fuse, seed, err)
			}
			if !bytes.Equal(got, oldImg) && !bytes.Equal(got, newImg) {
				t.Errorf("fuse=%d seed=%d: read a mixed image", fuse, seed)
			}
		}
	}
}

func TestBitFlipsAreDetectedAndRepaired(t *testing.T) {
	inj, s := newFaultyStore(t, 3, 256)
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	inj.SetConfig(Config{BitFlipProb: 1})
	inj.SetEnabled(true)
	img := bytes.Repeat([]byte{0x7E}, 256)
	if err := s.Flush(id, img); err != nil {
		t.Fatal(err)
	}
	inj.SetEnabled(false)
	got := make([]byte, 256)
	if err := s.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Error("flipped page not repaired to the written image")
	}
	if inj.Stats().BitFlips < 1 {
		t.Error("no bit flip recorded")
	}
	st := s.Stats()
	if st.Detected < 1 || st.Repaired < 1 {
		t.Errorf("store stats = %+v, want detection and repair", st)
	}
}

func TestForceErrorsAreTransient(t *testing.T) {
	inj := New(storage.NewMemDisk(), 4)
	inj.SetConfig(Config{ForceErrProb: 1})
	inj.SetEnabled(true)
	if err := inj.BeforeForce(10); !errors.Is(err, storage.ErrTransientIO) {
		t.Errorf("force = %v, want ErrTransientIO", err)
	}
	inj.Kill()
	if err := inj.BeforeForce(10); !errors.Is(err, storage.ErrCrashed) {
		t.Errorf("dead force = %v, want ErrCrashed", err)
	}
}

// TestTortureShort runs a miniature campaign end to end: two crash
// schedules on one seed, with every fault class enabled, must recover
// with zero invariant violations.
func TestTortureShort(t *testing.T) {
	if testing.Short() {
		t.Skip("torture campaign in -short mode")
	}
	cfg := DefaultTortureConfig()
	cfg.Seeds = 1
	cfg.Schedules = 2
	cfg.Txns = 80
	cfg.Workers = 2
	rep, err := Torture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Error(v)
	}
	if len(rep.Schedules) != 2 {
		t.Fatalf("ran %d schedules, want 2", len(rep.Schedules))
	}
	if rep.Probes != 2 || rep.Detected < int64(rep.Probes) {
		t.Errorf("probes=%d detected=%d: directed corruption not detected",
			rep.Probes, rep.Detected)
	}
	t.Log(rep.Summary())
}
