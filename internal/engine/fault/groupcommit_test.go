package fault

import (
	"sync/atomic"
	"testing"
	"time"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/db"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/engine/wal"
	"tpccmodel/internal/rng"
	"tpccmodel/internal/tpcc"
)

// killAtForce delegates to the injector but kills the device at the Nth
// log force — i.e. after the batch's waiters enqueued but before their
// records became durable. That is the exact window the group-commit ack
// rule must survive: every transaction in the doomed batch gets an error
// instead of an acknowledgment.
type killAtForce struct {
	inj    *Injector
	target int64
	n      atomic.Int64
}

func (h *killAtForce) BeforeForce(n int) error {
	if h.n.Add(1) == h.target {
		h.inj.Kill()
	}
	return h.inj.BeforeForce(n)
}

// TestGroupCommitKillBetweenEnqueueAndForce crashes the log device on a
// mid-run batch force under group commit, applies power loss, recovers,
// and asserts no acknowledged transaction was lost and no invariant
// broke: transactions whose batch force died were never acknowledged,
// so they may not be counted and must roll back cleanly.
func TestGroupCommitKillBetweenEnqueueAndForce(t *testing.T) {
	const workers = 4
	seedRng := rng.New(99)
	disk := storage.NewMemDisk()
	inj := New(disk, seedRng.Uint64())
	hook := &killAtForce{inj: inj, target: 40}
	d, err := db.OpenWith(db.Config{
		Warehouses: 1, PageSize: 1024, BufferPages: 256,
	}, db.Options{
		Disk:        inj,
		LogHook:     hook,
		GroupCommit: wal.GroupConfig{MaxBatch: 16, MaxHold: 500 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(99); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	base := measure(d)

	st, runErr := db.RunConcurrentPolicy(d, seedRng.Uint64(), tpcc.DefaultMix(),
		2000, workers, db.DefaultRetryPolicy())
	if runErr != nil {
		t.Fatalf("run failed fatally (crash should surface via RunStats): %v", runErr)
	}
	if !st.Crashed {
		t.Fatalf("force #%d never fired a crash (only %d forces issued)",
			hook.target, hook.n.Load())
	}

	if err := d.CrashPowerLoss(seedRng); err != nil {
		t.Fatal(err)
	}
	inj.Revive()
	if err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConsistency(); err != nil {
		t.Errorf("consistency after group-commit crash: %v", err)
	}
	live := measure(d)
	ackedNO := st.Counts[core.TxnNewOrder]
	slack := int64(workers)
	if lo := base.orders + ackedNO; live.orders < lo {
		t.Errorf("lost acknowledged new-orders: %d live, want >= %d (base %d + acked %d)",
			live.orders, lo, base.orders, ackedNO)
	} else if hi := lo + slack; live.orders > hi {
		t.Errorf("phantom orders: %d live, want <= %d", live.orders, hi)
	}
	if lo := base.history + st.Counts[core.TxnPayment]; live.history < lo {
		t.Errorf("lost acknowledged payments: %d history rows, want >= %d", live.history, lo)
	}
	t.Logf("acked %d txns before the batch-force kill (force #%d); %dB log tail truncated",
		st.Acknowledged(), hook.target, d.RecoveryStats().TruncatedBytes)
}

// TestTortureGroupCommit runs a reduced crash-torture campaign with
// group commit enabled: randomly timed crashes land on batch forces as
// well as page I/O, and every schedule's durability, consistency, and
// checksum invariants must hold exactly as in per-commit-force mode.
func TestTortureGroupCommit(t *testing.T) {
	if testing.Short() {
		t.Skip("torture campaign in -short mode")
	}
	cfg := DefaultTortureConfig()
	cfg.Seeds = 2
	cfg.Schedules = 4
	cfg.Txns = 150
	cfg.Workers = 4
	cfg.GroupCommit = wal.GroupConfig{MaxBatch: 16, MaxHold: 200 * time.Microsecond}
	rep, err := Torture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Error(v)
	}
	if len(rep.Schedules) != cfg.Seeds*cfg.Schedules {
		t.Fatalf("ran %d schedules, want %d", len(rep.Schedules), cfg.Seeds*cfg.Schedules)
	}
	t.Log(rep.Summary())
}
