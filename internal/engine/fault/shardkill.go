package fault

import (
	"fmt"

	"tpccmodel/internal/rng"
)

// ShardKillPoint names a step of the two-phase-commit protocol at which
// a shard kill may be injected. The shard coordinator fires its kill
// hook at each of these points; a torture campaign arms a plan that
// kills a chosen shard when a chosen point fires, covering every
// in-doubt window of the protocol.
type ShardKillPoint int

// Kill points, in protocol order.
const (
	// KillMidPrepare fires after the first participant prepared but
	// before the remaining participants (or the decision): a killed
	// participant recovers with a prepared, undecided branch.
	KillMidPrepare ShardKillPoint = iota
	// KillAfterPrepare fires when every participant has prepared but
	// the coordinator's decision record is not yet durable — killing
	// the coordinator here exercises presumed abort, killing a
	// participant exercises commit-side in-doubt resolution.
	KillAfterPrepare
	// KillBeforeParticipantCommit fires after the decision record is
	// durable but before participants learn it.
	KillBeforeParticipantCommit
	// KillDuringResolve fires while a recovering shard is resolving an
	// in-doubt branch against its coordinator.
	KillDuringResolve
	// NumShardKillPoints counts the points above.
	NumShardKillPoints
)

// String names the point.
func (p ShardKillPoint) String() string {
	switch p {
	case KillMidPrepare:
		return "mid-prepare"
	case KillAfterPrepare:
		return "after-prepare"
	case KillBeforeParticipantCommit:
		return "before-participant-commit"
	case KillDuringResolve:
		return "during-resolve"
	}
	return fmt.Sprintf("point(%d)", int(p))
}

// ShardKillPlan is one armed kill: when Point fires (for any gid), the
// Victim shard dies. A plan fires at most once.
type ShardKillPlan struct {
	Point  ShardKillPoint
	Victim int
	// CoordinatorVictim marks plans whose victim is chosen to be the
	// transaction's own coordinator rather than a participant; the
	// executing hook substitutes the coordinator shard at fire time.
	CoordinatorVictim bool
}

// NewShardKillPlan draws a deterministic plan from r for a cluster of
// n shards: a uniform kill point, a uniform victim, and a coin for
// whether the victim should be the coordinator itself (the most
// delicate crash: its forced commit record IS the global decision).
func NewShardKillPlan(r *rng.RNG, n int) ShardKillPlan {
	return ShardKillPlan{
		Point:             ShardKillPoint(r.Int63n(int64(NumShardKillPoints))),
		Victim:            int(r.Int63n(int64(n))),
		CoordinatorVictim: r.Bernoulli(0.5),
	}
}
