// Package bufmgr implements the engine's buffer manager: a fixed set of
// frames over the storage.Store with pin/unpin semantics, LRU eviction of
// unpinned frames, write-back of dirty pages, and per-class hit/miss
// accounting so the engine's buffer behaviour can be compared with the
// paper's trace-driven simulation.
package bufmgr

import (
	"fmt"
	"sync"

	"tpccmodel/internal/engine/storage"
)

// Tap observes the buffer manager's reference stream: it is called once
// per logical access (pin) with the page, its accounting class, and the
// hit/miss outcome, and once per page allocation (alloc = true; allocations
// make a page resident at the MRU position without counting as an access,
// so a replayed LRU simulation must see them to reproduce the pool state).
// The tap runs under the manager lock, so calls are totally ordered and the
// callback must not re-enter the manager. With a single-threaded caller the
// call order is exactly the LRU decision order, which is what makes the
// engine's measured hit/miss stream bit-reproducible by a stack-distance
// replay (package xval).
type Tap func(id storage.PageID, cls int, alloc, hit bool)

// Stats counts logical page accesses and physical misses.
type Stats struct {
	Hits    int64
	Misses  int64
	Evicts  int64
	Flushes int64
}

// Accesses returns Hits+Misses.
func (s Stats) Accesses() int64 { return s.Hits + s.Misses }

// MissRate returns Misses/Accesses (0 when unused).
func (s Stats) MissRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses) / float64(a)
	}
	return 0
}

type frame struct {
	id    storage.PageID
	data  []byte
	pins  int
	dirty bool
	// inLRU with prev/next form an intrusive doubly-linked LRU list of
	// unpinned frames — intrusive so moving a frame on pin/unpin never
	// allocates a list node (container/list would allocate an Element
	// per unpin, one heap allocation on every record access).
	inLRU      bool
	prev, next *frame
	// contentMu serializes readers/writers of data: row locks serialize
	// same-row access, but two rows sharing a page (or its slot bitmap
	// byte) may be touched concurrently.
	contentMu sync.Mutex
}

// Manager is the buffer manager. All methods are safe for concurrent use.
type Manager struct {
	store    *storage.Store
	capacity int

	mu     sync.Mutex
	cond   *sync.Cond
	frames map[storage.PageID]*frame
	// Intrusive LRU list of unpinned frames: lruHead = MRU, lruTail =
	// eviction victim.
	lruHead, lruTail *frame
	// freeFrames chains evicted frames (via next) for reuse, and
	// frameChunk/dataSlab back batched frame allocation, so a steady
	// state of misses and evictions recycles frames instead of
	// heap-allocating a frame and page buffer per miss.
	freeFrames *frame
	frameChunk []frame
	dataSlab   []byte

	stats Stats
	// classOf assigns pages to accounting classes (e.g. one per
	// relation); nil means everything lands in class 0.
	classOf    func(storage.PageID) int
	classStats []Stats

	// preFlush runs before any dirty page is written back (the WAL
	// rule): the database installs the log's Force here so before-images
	// of stolen pages are durable before the page image can reach disk.
	preFlush func() error

	// tap, when non-nil, observes every access and allocation in
	// decision order (see Tap).
	tap Tap
}

// New creates a buffer manager with capacity frames over store.
func New(store *storage.Store, capacity int) *Manager {
	if capacity <= 0 {
		panic("bufmgr: capacity must be positive")
	}
	m := &Manager{
		store:    store,
		capacity: capacity,
		frames:   make(map[storage.PageID]*frame, capacity),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// frameChunkSize bounds how many frames are allocated per chunk.
const frameChunkSize = 64

// frameFor returns a reusable or freshly carved frame reset for page id.
// Callers hold m.mu.
func (m *Manager) frameFor(id storage.PageID) *frame {
	f := m.freeFrames
	if f != nil {
		m.freeFrames = f.next
		f.next = nil
	} else {
		if len(m.frameChunk) == 0 {
			n := m.capacity
			if n > frameChunkSize {
				n = frameChunkSize
			}
			m.frameChunk = make([]frame, n)
			m.dataSlab = make([]byte, n*m.store.PageSize())
		}
		f = &m.frameChunk[0]
		m.frameChunk = m.frameChunk[1:]
		ps := m.store.PageSize()
		f.data = m.dataSlab[:ps:ps]
		m.dataSlab = m.dataSlab[ps:]
	}
	f.id = id
	f.pins = 0
	f.dirty = false
	f.inLRU = false
	f.prev, f.next = nil, nil
	return f
}

// freeFrame returns an unlisted frame to the reuse chain. Callers hold
// m.mu.
func (m *Manager) freeFrame(f *frame) {
	f.next = m.freeFrames
	m.freeFrames = f
}

// lruPush puts f at the MRU end. Callers hold m.mu; f must not be listed.
func (m *Manager) lruPush(f *frame) {
	f.inLRU = true
	f.prev = nil
	f.next = m.lruHead
	if m.lruHead != nil {
		m.lruHead.prev = f
	}
	m.lruHead = f
	if m.lruTail == nil {
		m.lruTail = f
	}
}

// lruRemove unlinks f from the LRU list. Callers hold m.mu.
func (m *Manager) lruRemove(f *frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		m.lruHead = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		m.lruTail = f.prev
	}
	f.inLRU = false
	f.prev, f.next = nil, nil
}

// SetClassifier installs a page-to-class mapping with the given number
// of accounting classes; must be called before any access.
func (m *Manager) SetClassifier(classes int, fn func(storage.PageID) int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.classOf = fn
	m.classStats = make([]Stats, classes)
}

// SetPreFlush installs a hook that must succeed before any dirty page is
// written back to the store (nil disables). Used to enforce the WAL rule.
func (m *Manager) SetPreFlush(fn func() error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.preFlush = fn
}

// SetTap installs a reference-stream tap (nil disables). Install it before
// the first access so the replayed stream covers the whole pool history;
// a tap installed mid-run would miss the residency established earlier.
func (m *Manager) SetTap(fn Tap) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tap = fn
}

// flushFrame writes one dirty frame back, honoring the WAL rule.
// Callers hold m.mu.
func (m *Manager) flushFrame(f *frame) error {
	if m.preFlush != nil {
		if err := m.preFlush(); err != nil {
			return err
		}
	}
	if err := m.store.Flush(f.id, f.data); err != nil {
		return err
	}
	m.stats.Flushes++
	return nil
}

// Capacity returns the frame count.
func (m *Manager) Capacity() int { return m.capacity }

// Stats returns a copy of the global counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ClassStats returns a copy of the per-class counters.
func (m *Manager) ClassStats() []Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Stats(nil), m.classStats...)
}

// ResetStats zeroes all counters (e.g. after warmup).
func (m *Manager) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
	for i := range m.classStats {
		m.classStats[i] = Stats{}
	}
}

// pin returns the frame for id with its pin count incremented, reading the
// page in on a miss and evicting an unpinned LRU victim when full. It
// blocks while every frame is pinned.
func (m *Manager) pin(id storage.PageID) (*frame, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	cls := 0
	if m.classOf != nil {
		cls = m.classOf(id)
	}
	if f, ok := m.frames[id]; ok {
		m.stats.Hits++
		if m.classStats != nil {
			m.classStats[cls].Hits++
		}
		if m.tap != nil {
			m.tap(id, cls, false, true)
		}
		if f.pins == 0 && f.inLRU {
			m.lruRemove(f)
		}
		f.pins++
		return f, nil
	}

	m.stats.Misses++
	if m.classStats != nil {
		m.classStats[cls].Misses++
	}
	if m.tap != nil {
		m.tap(id, cls, false, false)
	}
	for len(m.frames) >= m.capacity {
		if f := m.lruTail; f != nil {
			if f.dirty {
				if err := m.flushFrame(f); err != nil {
					return nil, err
				}
			}
			m.lruRemove(f)
			delete(m.frames, f.id)
			m.stats.Evicts++
			m.freeFrame(f)
			continue
		}
		// All frames pinned: wait for an unpin.
		m.cond.Wait()
	}

	f := m.frameFor(id)
	f.pins = 1
	if err := m.store.Read(id, f.data); err != nil {
		m.freeFrame(f)
		return nil, err
	}
	m.frames[id] = f
	return f, nil
}

// unpin releases one pin, recording dirtiness.
func (m *Manager) unpin(f *frame, dirty bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if dirty {
		f.dirty = true
	}
	f.pins--
	if f.pins < 0 {
		panic("bufmgr: unpin without pin")
	}
	if f.pins == 0 {
		m.lruPush(f)
		m.cond.Signal()
	}
}

// Pin implements storage.Pager's closure-free page access: it pins page
// id, acquires the frame's content latch, and returns the page bytes.
// Pin/Unpin do the exact work of With without a callback, so hot-path
// callers avoid the per-call closure allocation an interface boundary
// forces. The Token carries the frame pointer; storing a pointer in the
// interface does not allocate.
func (m *Manager) Pin(id storage.PageID) (storage.Pinned, error) {
	f, err := m.pin(id)
	if err != nil {
		return storage.Pinned{}, err
	}
	f.contentMu.Lock()
	return storage.Pinned{Data: f.data, Token: f}, nil
}

// Unpin releases a page returned by Pin, marking it dirty when dirty.
func (m *Manager) Unpin(p storage.Pinned, dirty bool) {
	f := p.Token.(*frame)
	f.contentMu.Unlock()
	m.unpin(f, dirty)
}

// With implements storage.Pager: it pins page id, runs fn on its bytes,
// and unpins.
func (m *Manager) With(id storage.PageID, dirty bool, fn func(page []byte)) error {
	f, err := m.pin(id)
	if err != nil {
		return err
	}
	// The frame's data slice is stable while pinned; fn runs outside the
	// manager lock so callers don't serialize the whole pool, under the
	// frame's content mutex so same-page accesses don't race.
	f.contentMu.Lock()
	fn(f.data)
	f.contentMu.Unlock()
	m.unpin(f, dirty)
	return nil
}

// Allocate implements storage.Pager: it allocates a store page and makes
// it resident and dirty. Allocation is page creation, not a logical
// access, so it does not touch the hit/miss counters (which would
// otherwise attribute the inevitable cold miss before the caller can tag
// the page's relation).
func (m *Manager) Allocate() (storage.PageID, error) {
	id, err := m.store.Allocate()
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.tap != nil {
		// The relation tag is attached by the caller after Allocate
		// returns, so the class reported here is the default; replays
		// only need the page identity of uncounted events.
		cls := 0
		if m.classOf != nil {
			cls = m.classOf(id)
		}
		m.tap(id, cls, true, false)
	}
	for len(m.frames) >= m.capacity {
		if f := m.lruTail; f != nil {
			if f.dirty {
				if err := m.flushFrame(f); err != nil {
					return 0, err
				}
			}
			m.lruRemove(f)
			delete(m.frames, f.id)
			m.stats.Evicts++
			m.freeFrame(f)
			continue
		}
		m.cond.Wait()
	}
	f := m.frameFor(id)
	// A recycled frame still holds its previous page's bytes; a new page
	// must start zeroed, matching its durable image.
	clear(f.data)
	f.dirty = true
	m.frames[id] = f
	m.lruPush(f)
	return id, nil
}

// FlushAll writes every dirty resident page back to the store (a
// checkpoint).
func (m *Manager) FlushAll() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.frames {
		if f.dirty {
			f.contentMu.Lock()
			err := m.flushFrame(f)
			f.contentMu.Unlock()
			if err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

// Crash discards every resident frame without flushing, simulating a
// failure: dirty pages are lost and only the store's durable images
// survive. Pinned frames indicate a bug in the caller.
func (m *Manager) Crash() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.frames {
		if f.pins > 0 {
			return fmt.Errorf("bufmgr: crash with pinned page %d", f.id)
		}
	}
	for _, f := range m.frames {
		f.inLRU = false
		f.prev, f.next = nil, nil
		m.freeFrame(f)
	}
	m.frames = make(map[storage.PageID]*frame, m.capacity)
	m.lruHead, m.lruTail = nil, nil
	return nil
}

// Resident returns the number of resident frames.
func (m *Manager) Resident() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.frames)
}
