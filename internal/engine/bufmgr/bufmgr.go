// Package bufmgr implements the engine's buffer manager: a fixed set of
// frames over the storage.Store with pin/unpin semantics, LRU eviction of
// unpinned frames, write-back of dirty pages, and per-class hit/miss
// accounting so the engine's buffer behaviour can be compared with the
// paper's trace-driven simulation.
//
// The frame set is PARTITIONED: pages hash into P independent partitions,
// each with its own mutex, frame table, LRU list, freelist, and counters,
// so concurrent pins of different pages in different partitions never
// serialize on a shared mutex (the paper's throughput model charges a
// fixed CPU cost per buffer access, implicitly assuming those accesses
// scale with added processors). New gives P=1 — a single LRU over all
// frames, byte-identical in behaviour to the seed manager — and
// NewPartitioned(P>1) splits capacity evenly. Each partition runs LRU
// over its own share, so the aggregate is a partitioned-LRU policy: hit
// ratios differ slightly from global LRU, and the reference-stream replay
// (package xval) claims bit-identity only at P=1.
package bufmgr

import (
	"fmt"
	"sync"

	"tpccmodel/internal/engine/storage"
)

// Tap observes the buffer manager's reference stream: it is called once
// per logical access (pin) with the page, its accounting class, and the
// hit/miss outcome, and once per page allocation (alloc = true; allocations
// make a page resident at the MRU position without counting as an access,
// so a replayed LRU simulation must see them to reproduce the pool state).
// The tap runs under the partition lock, so calls are totally ordered PER
// PARTITION and the callback must not re-enter the manager. With a single
// partition and a single-threaded caller the call order is exactly the LRU
// decision order, which is what makes the engine's measured hit/miss
// stream bit-reproducible by a stack-distance replay (package xval) —
// that guarantee is therefore only claimed at partitions = 1, and the
// cross-validation gate pins that configuration.
type Tap func(id storage.PageID, cls int, alloc, hit bool)

// Stats counts logical page accesses and physical misses.
type Stats struct {
	Hits    int64
	Misses  int64
	Evicts  int64
	Flushes int64
}

// Accesses returns Hits+Misses.
func (s Stats) Accesses() int64 { return s.Hits + s.Misses }

// MissRate returns Misses/Accesses (0 when unused).
func (s Stats) MissRate() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses) / float64(a)
	}
	return 0
}

// add accumulates other into s.
func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evicts += o.Evicts
	s.Flushes += o.Flushes
}

type frame struct {
	id    storage.PageID
	data  []byte
	pins  int
	dirty bool
	// part is the owning partition; Unpin needs it to find the right
	// mutex without rehashing the page id.
	part *partition
	// inLRU with prev/next form an intrusive doubly-linked LRU list of
	// unpinned frames — intrusive so moving a frame on pin/unpin never
	// allocates a list node (container/list would allocate an Element
	// per unpin, one heap allocation on every record access).
	inLRU      bool
	prev, next *frame
	// contentMu serializes readers/writers of data: row locks serialize
	// same-row access, but two rows sharing a page (or its slot bitmap
	// byte) may be touched concurrently.
	contentMu sync.Mutex
}

// partition is one shard of the pool: a mutex, the frames whose pages hash
// here, an intrusive LRU of its unpinned frames, a freelist, and this
// partition's share of the counters. Eviction, write-back, and the
// all-pinned wait are all partition-local.
type partition struct {
	mgr      *Manager
	capacity int

	mu     sync.Mutex
	cond   *sync.Cond
	frames map[storage.PageID]*frame
	// Intrusive LRU list of unpinned frames: lruHead = MRU, lruTail =
	// eviction victim.
	lruHead, lruTail *frame
	// freeFrames chains evicted frames (via next) for reuse, and
	// frameChunk/dataSlab back batched frame allocation, so a steady
	// state of misses and evictions recycles frames instead of
	// heap-allocating a frame and page buffer per miss.
	freeFrames *frame
	frameChunk []frame
	dataSlab   []byte

	stats      Stats
	classStats []Stats
}

// Manager is the partitioned buffer manager. All methods are safe for
// concurrent use.
type Manager struct {
	store    *storage.Store
	capacity int
	parts    []*partition
	mask     uint64

	// The shared hooks below are read under a partition mutex on every
	// access; writers (the Set* methods) hold EVERY partition mutex, so
	// no reader can observe a torn update and installs are race-free
	// even mid-run.
	//
	// classOf assigns pages to accounting classes (e.g. one per
	// relation); nil means everything lands in class 0.
	classOf func(storage.PageID) int
	// preFlush runs before any dirty page is written back (the WAL
	// rule): the database installs the log's Force here so before-images
	// of stolen pages are durable before the page image can reach disk.
	preFlush func() error
	// tap, when non-nil, observes every access and allocation in
	// per-partition decision order (see Tap).
	tap Tap
}

// New creates a buffer manager with capacity frames over store as one
// partition: a single global LRU, the seed behaviour and the configuration
// whose reference stream the cross-validation replay reproduces exactly.
func New(store *storage.Store, capacity int) *Manager {
	return NewPartitioned(store, capacity, 1)
}

// NewPartitioned creates a buffer manager with capacity frames split over
// partitions (rounded up to a power of two; < 1 means 1). Capacity is
// divided evenly with the remainder spread over the first partitions;
// every partition must end up with at least one frame.
func NewPartitioned(store *storage.Store, capacity, partitions int) *Manager {
	if capacity <= 0 {
		panic("bufmgr: capacity must be positive")
	}
	if partitions < 1 {
		partitions = 1
	}
	n := 1
	for n < partitions {
		n <<= 1
	}
	if n > capacity {
		panic(fmt.Sprintf("bufmgr: %d partitions exceed %d frames", n, capacity))
	}
	m := &Manager{
		store:    store,
		capacity: capacity,
		parts:    make([]*partition, n),
		mask:     uint64(n - 1),
	}
	base, rem := capacity/n, capacity%n
	for i := range m.parts {
		c := base
		if i < rem {
			c++
		}
		p := &partition{
			mgr:      m,
			capacity: c,
			frames:   make(map[storage.PageID]*frame, c),
		}
		p.cond = sync.NewCond(&p.mu)
		m.parts[i] = p
	}
	return m
}

// Partitions returns the partition count (a power of two).
func (m *Manager) Partitions() int { return len(m.parts) }

// partOf hashes a page to its partition. Page ids are allocated densely,
// so Fibonacci multiplicative hashing spreads the near-sequential ids of
// one relation across partitions instead of leaving a hot relation's pages
// clustered in one.
func (m *Manager) partOf(id storage.PageID) *partition {
	h := uint64(id) * 0x9e3779b97f4a7c15
	return m.parts[(h>>32)&m.mask]
}

// frameChunkSize bounds how many frames are allocated per chunk.
const frameChunkSize = 64

// frameFor returns a reusable or freshly carved frame reset for page id.
// Callers hold p.mu.
func (p *partition) frameFor(id storage.PageID) *frame {
	f := p.freeFrames
	if f != nil {
		p.freeFrames = f.next
		f.next = nil
	} else {
		if len(p.frameChunk) == 0 {
			n := p.capacity
			if n > frameChunkSize {
				n = frameChunkSize
			}
			p.frameChunk = make([]frame, n)
			p.dataSlab = make([]byte, n*p.mgr.store.PageSize())
		}
		f = &p.frameChunk[0]
		p.frameChunk = p.frameChunk[1:]
		ps := p.mgr.store.PageSize()
		f.data = p.dataSlab[:ps:ps]
		p.dataSlab = p.dataSlab[ps:]
		f.part = p
	}
	f.id = id
	f.pins = 0
	f.dirty = false
	f.inLRU = false
	f.prev, f.next = nil, nil
	return f
}

// freeFrame returns an unlisted frame to the reuse chain. Callers hold
// p.mu.
func (p *partition) freeFrame(f *frame) {
	f.next = p.freeFrames
	p.freeFrames = f
}

// lruPush puts f at the MRU end. Callers hold p.mu; f must not be listed.
func (p *partition) lruPush(f *frame) {
	f.inLRU = true
	f.prev = nil
	f.next = p.lruHead
	if p.lruHead != nil {
		p.lruHead.prev = f
	}
	p.lruHead = f
	if p.lruTail == nil {
		p.lruTail = f
	}
}

// lruRemove unlinks f from the LRU list. Callers hold p.mu.
func (p *partition) lruRemove(f *frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		p.lruHead = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		p.lruTail = f.prev
	}
	f.inLRU = false
	f.prev, f.next = nil, nil
}

// lockAll takes every partition mutex (in index order) so a shared-hook
// write cannot race any partition's reads.
func (m *Manager) lockAll() {
	for _, p := range m.parts {
		p.mu.Lock()
	}
}

func (m *Manager) unlockAll() {
	for _, p := range m.parts {
		p.mu.Unlock()
	}
}

// SetClassifier installs a page-to-class mapping with the given number
// of accounting classes; must be called before any access.
func (m *Manager) SetClassifier(classes int, fn func(storage.PageID) int) {
	m.lockAll()
	defer m.unlockAll()
	m.classOf = fn
	for _, p := range m.parts {
		p.classStats = make([]Stats, classes)
	}
}

// SetPreFlush installs a hook that must succeed before any dirty page is
// written back to the store (nil disables). Used to enforce the WAL rule.
func (m *Manager) SetPreFlush(fn func() error) {
	m.lockAll()
	defer m.unlockAll()
	m.preFlush = fn
}

// SetTap installs a reference-stream tap (nil disables). Install it before
// the first access so the replayed stream covers the whole pool history;
// a tap installed mid-run would miss the residency established earlier.
// With more than one partition, tap calls from different partitions may
// interleave (total ordering is per-partition only); the exact replay
// contract holds only at partitions = 1.
func (m *Manager) SetTap(fn Tap) {
	m.lockAll()
	defer m.unlockAll()
	m.tap = fn
}

// flushFrame writes one dirty frame back, honoring the WAL rule.
// Callers hold p.mu.
func (p *partition) flushFrame(f *frame) error {
	if fn := p.mgr.preFlush; fn != nil {
		if err := fn(); err != nil {
			return err
		}
	}
	if err := p.mgr.store.Flush(f.id, f.data); err != nil {
		return err
	}
	p.stats.Flushes++
	return nil
}

// Capacity returns the total frame count across partitions.
func (m *Manager) Capacity() int { return m.capacity }

// Stats returns the global counters, aggregated over partitions.
func (m *Manager) Stats() Stats {
	var out Stats
	for _, p := range m.parts {
		p.mu.Lock()
		out.add(p.stats)
		p.mu.Unlock()
	}
	return out
}

// ClassStats returns the per-class counters, aggregated over partitions.
func (m *Manager) ClassStats() []Stats {
	var out []Stats
	for _, p := range m.parts {
		p.mu.Lock()
		if len(p.classStats) > len(out) {
			grown := make([]Stats, len(p.classStats))
			copy(grown, out)
			out = grown
		}
		for i := range p.classStats {
			out[i].add(p.classStats[i])
		}
		p.mu.Unlock()
	}
	return out
}

// ResetStats zeroes all counters (e.g. after warmup).
func (m *Manager) ResetStats() {
	for _, p := range m.parts {
		p.mu.Lock()
		p.stats = Stats{}
		for i := range p.classStats {
			p.classStats[i] = Stats{}
		}
		p.mu.Unlock()
	}
}

// pin returns the frame for id with its pin count incremented, reading the
// page in on a miss and evicting an unpinned LRU victim when the partition
// is full. It blocks while every frame of the partition is pinned.
func (m *Manager) pin(id storage.PageID) (*frame, error) {
	p := m.partOf(id)
	p.mu.Lock()
	defer p.mu.Unlock()

	cls := 0
	if m.classOf != nil {
		cls = m.classOf(id)
	}
	if f, ok := p.frames[id]; ok {
		p.stats.Hits++
		if p.classStats != nil {
			p.classStats[cls].Hits++
		}
		if m.tap != nil {
			m.tap(id, cls, false, true)
		}
		if f.pins == 0 && f.inLRU {
			p.lruRemove(f)
		}
		f.pins++
		return f, nil
	}

	p.stats.Misses++
	if p.classStats != nil {
		p.classStats[cls].Misses++
	}
	if m.tap != nil {
		m.tap(id, cls, false, false)
	}
	for len(p.frames) >= p.capacity {
		if f := p.lruTail; f != nil {
			if f.dirty {
				if err := p.flushFrame(f); err != nil {
					return nil, err
				}
			}
			p.lruRemove(f)
			delete(p.frames, f.id)
			p.stats.Evicts++
			p.freeFrame(f)
			continue
		}
		// All frames pinned: wait for an unpin.
		p.cond.Wait()
	}

	f := p.frameFor(id)
	f.pins = 1
	if err := m.store.Read(id, f.data); err != nil {
		p.freeFrame(f)
		return nil, err
	}
	p.frames[id] = f
	return f, nil
}

// unpin releases one pin, recording dirtiness.
func (m *Manager) unpin(f *frame, dirty bool) {
	p := f.part
	p.mu.Lock()
	defer p.mu.Unlock()
	if dirty {
		f.dirty = true
	}
	f.pins--
	if f.pins < 0 {
		panic("bufmgr: unpin without pin")
	}
	if f.pins == 0 {
		p.lruPush(f)
		p.cond.Signal()
	}
}

// Pin implements storage.Pager's closure-free page access: it pins page
// id, acquires the frame's content latch, and returns the page bytes.
// Pin/Unpin do the exact work of With without a callback, so hot-path
// callers avoid the per-call closure allocation an interface boundary
// forces. The Token carries the frame pointer; storing a pointer in the
// interface does not allocate.
func (m *Manager) Pin(id storage.PageID) (storage.Pinned, error) {
	f, err := m.pin(id)
	if err != nil {
		return storage.Pinned{}, err
	}
	f.contentMu.Lock()
	return storage.Pinned{Data: f.data, Token: f}, nil
}

// Unpin releases a page returned by Pin, marking it dirty when dirty.
func (m *Manager) Unpin(p storage.Pinned, dirty bool) {
	f := p.Token.(*frame)
	f.contentMu.Unlock()
	m.unpin(f, dirty)
}

// With implements storage.Pager: it pins page id, runs fn on its bytes,
// and unpins.
func (m *Manager) With(id storage.PageID, dirty bool, fn func(page []byte)) error {
	f, err := m.pin(id)
	if err != nil {
		return err
	}
	// The frame's data slice is stable while pinned; fn runs outside the
	// partition lock so callers don't serialize the pool, under the
	// frame's content mutex so same-page accesses don't race.
	f.contentMu.Lock()
	fn(f.data)
	f.contentMu.Unlock()
	m.unpin(f, dirty)
	return nil
}

// Allocate implements storage.Pager: it allocates a store page and makes
// it resident and dirty. Allocation is page creation, not a logical
// access, so it does not touch the hit/miss counters (which would
// otherwise attribute the inevitable cold miss before the caller can tag
// the page's relation).
func (m *Manager) Allocate() (storage.PageID, error) {
	id, err := m.store.Allocate()
	if err != nil {
		return 0, err
	}
	p := m.partOf(id)
	p.mu.Lock()
	defer p.mu.Unlock()
	if m.tap != nil {
		// The relation tag is attached by the caller after Allocate
		// returns, so the class reported here is the default; replays
		// only need the page identity of uncounted events.
		cls := 0
		if m.classOf != nil {
			cls = m.classOf(id)
		}
		m.tap(id, cls, true, false)
	}
	for len(p.frames) >= p.capacity {
		if f := p.lruTail; f != nil {
			if f.dirty {
				if err := p.flushFrame(f); err != nil {
					return 0, err
				}
			}
			p.lruRemove(f)
			delete(p.frames, f.id)
			p.stats.Evicts++
			p.freeFrame(f)
			continue
		}
		p.cond.Wait()
	}
	f := p.frameFor(id)
	// A recycled frame still holds its previous page's bytes; a new page
	// must start zeroed, matching its durable image.
	clear(f.data)
	f.dirty = true
	p.frames[id] = f
	p.lruPush(f)
	return id, nil
}

// FlushAll writes every dirty resident page back to the store (a
// checkpoint).
func (m *Manager) FlushAll() error {
	for _, p := range m.parts {
		p.mu.Lock()
		for _, f := range p.frames {
			if f.dirty {
				f.contentMu.Lock()
				err := p.flushFrame(f)
				f.contentMu.Unlock()
				if err != nil {
					p.mu.Unlock()
					return err
				}
				f.dirty = false
			}
		}
		p.mu.Unlock()
	}
	return nil
}

// Crash discards every resident frame without flushing, simulating a
// failure: dirty pages are lost and only the store's durable images
// survive. Pinned frames indicate a bug in the caller.
func (m *Manager) Crash() error {
	// All partitions locked: the crash is atomic across the pool.
	m.lockAll()
	defer m.unlockAll()
	for _, p := range m.parts {
		for _, f := range p.frames {
			if f.pins > 0 {
				return fmt.Errorf("bufmgr: crash with pinned page %d", f.id)
			}
		}
	}
	for _, p := range m.parts {
		for _, f := range p.frames {
			f.inLRU = false
			f.prev, f.next = nil, nil
			p.freeFrame(f)
		}
		p.frames = make(map[storage.PageID]*frame, p.capacity)
		p.lruHead, p.lruTail = nil, nil
	}
	return nil
}

// Resident returns the number of resident frames across partitions.
func (m *Manager) Resident() int {
	n := 0
	for _, p := range m.parts {
		p.mu.Lock()
		n += len(p.frames)
		p.mu.Unlock()
	}
	return n
}
