package bufmgr

import (
	"fmt"
	"sync"
	"testing"

	"tpccmodel/internal/buffer"
	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/nurand"
	"tpccmodel/internal/rng"
)

// tapRecorder captures the manager's reference stream: page, engine
// verdict, and whether the event was an allocation.
type tapEvent struct {
	page  storage.PageID
	alloc bool
	hit   bool
}

func recordingManager(t *testing.T, capacity int) (*Manager, *[]tapEvent) {
	t.Helper()
	m := New(mustStore(t, 256), capacity)
	events := &[]tapEvent{}
	m.SetTap(func(id storage.PageID, cls int, alloc, hit bool) {
		*events = append(*events, tapEvent{page: id, alloc: alloc, hit: hit})
	})
	return m, events
}

// preallocate creates n store pages through the manager (so the tap sees
// the allocations) and returns their ids.
func preallocate(t *testing.T, m *Manager, n int) []storage.PageID {
	t.Helper()
	ids := make([]storage.PageID, n)
	for i := range ids {
		id, err := m.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return ids
}

// checkAgainstOracles replays the tapped stream through two independent
// oracles — the stack-distance simulator (hit iff distance <= capacity,
// LRU's inclusion property) and the direct LRU policy — and fails on the
// first access where either disagrees with the engine's own verdict.
// Allocations touch both oracles without being judged, mirroring the
// engine's uncounted-MRU-insert semantics.
func checkAgainstOracles(t *testing.T, events []tapEvent, capacity int64) {
	t.Helper()
	stack := buffer.NewStackSim()
	lru := buffer.NewLRU(capacity)
	for i, e := range events {
		d := stack.Access(core.PageID(e.page))
		lruHit := lru.Access(core.PageID(e.page))
		if e.alloc {
			continue
		}
		stackHit := d != buffer.ColdDistance && d <= capacity
		if e.hit != stackHit {
			t.Fatalf("access %d (page %d): engine hit=%v, stack-distance oracle hit=%v (distance %d)",
				i, e.page, e.hit, stackHit, d)
		}
		if e.hit != lruHit {
			t.Fatalf("access %d (page %d): engine hit=%v, LRU policy oracle hit=%v",
				i, e.page, e.hit, lruHit)
		}
	}
}

// TestLRUDifferentialAdversarial drives the buffer manager with the access
// patterns most likely to expose an eviction-order bug and requires exact
// agreement with both oracles on every access.
func TestLRUDifferentialAdversarial(t *testing.T) {
	const capacity = 16
	patterns := []struct {
		name  string
		pages int
		drive func(ids []storage.PageID, access func(storage.PageID))
	}{
		{
			// Sequential flood: a working set far over capacity, cycled
			// repeatedly — every access past the first lap must miss.
			name:  "sequential-flood",
			pages: 3 * capacity,
			drive: func(ids []storage.PageID, access func(storage.PageID)) {
				for lap := 0; lap < 4; lap++ {
					for _, id := range ids {
						access(id)
					}
				}
			},
		},
		{
			// NURand skew: the benchmark's own hot/cold mixture, where a
			// wrong victim choice shows up as a hit-rate discrepancy.
			name:  "nurand-skew",
			pages: 8 * capacity,
			drive: func(ids []storage.PageID, access func(storage.PageID)) {
				gen := nurand.NewGen(nurand.Params{A: 31, X: 0, Y: int64(len(ids)) - 1}, rng.New(7))
				for i := 0; i < 4096; i++ {
					access(ids[gen.Next()])
				}
			},
		},
		{
			// Scan-then-rescan at exactly capacity: the second scan must
			// hit on every page. The classic off-by-one in "evict when
			// full" turns it into all misses.
			name:  "rescan-at-capacity",
			pages: capacity,
			drive: func(ids []storage.PageID, access func(storage.PageID)) {
				for lap := 0; lap < 3; lap++ {
					for _, id := range ids {
						access(id)
					}
				}
			},
		},
		{
			// Scan-then-rescan one past capacity: LRU's pathological
			// case, every rescan access must miss.
			name:  "rescan-capacity-plus-one",
			pages: capacity + 1,
			drive: func(ids []storage.PageID, access func(storage.PageID)) {
				for lap := 0; lap < 3; lap++ {
					for _, id := range ids {
						access(id)
					}
				}
			},
		},
	}
	for _, p := range patterns {
		t.Run(p.name, func(t *testing.T) {
			m, events := recordingManager(t, capacity)
			ids := preallocate(t, m, p.pages)
			p.drive(ids, func(id storage.PageID) {
				if err := m.With(id, false, func([]byte) {}); err != nil {
					t.Fatal(err)
				}
			})
			checkAgainstOracles(t, *events, capacity)
			// The tap stream and the counters must describe the same run.
			st := m.Stats()
			var taps int64
			for _, e := range *events {
				if !e.alloc {
					taps++
				}
			}
			if taps != st.Accesses() {
				t.Fatalf("tap recorded %d accesses, counters say %d", taps, st.Accesses())
			}
		})
	}
}

// TestLRUDifferentialAllocationInterplay interleaves allocations with
// accesses: allocations claim MRU slots without counting as accesses, and
// both oracles must still match the engine verdict access for access.
func TestLRUDifferentialAllocationInterplay(t *testing.T) {
	const capacity = 8
	m, events := recordingManager(t, capacity)
	ids := preallocate(t, m, capacity)
	r := rng.New(11)
	access := func(id storage.PageID) {
		if err := m.With(id, false, func([]byte) {}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 512; i++ {
		if r.Int63n(5) == 0 {
			id, err := m.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
			continue
		}
		access(ids[r.Int63n(int64(len(ids)))])
	}
	checkAgainstOracles(t, *events, capacity)
}

// TestTapConcurrentSmoke drives the manager from several goroutines with
// the tap installed; run under -race via `go test -race ./internal/engine/...`.
// Concurrent verdicts cannot be compared against a serial oracle (unpin
// order is scheduler-dependent), but the tap must observe exactly one
// event per counted access and must never tear.
func TestTapConcurrentSmoke(t *testing.T) {
	const capacity = 8
	m, events := recordingManager(t, capacity)
	ids := preallocate(t, m, 4*capacity)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			for i := 0; i < 256; i++ {
				id := ids[r.Int63n(int64(len(ids)))]
				if err := m.With(id, false, func([]byte) {}); err != nil {
					panic(fmt.Sprintf("access: %v", err))
				}
			}
		}(uint64(w) + 1)
	}
	wg.Wait()
	st := m.Stats()
	var taps int64
	for _, e := range *events {
		if !e.alloc {
			taps++
		}
	}
	if want := st.Accesses(); taps != want {
		t.Fatalf("tap recorded %d accesses, counters say %d", taps, want)
	}
	if taps != 4*256 {
		t.Fatalf("tap recorded %d accesses, want %d", taps, 4*256)
	}
}

// TestSetTapDisable verifies a nil tap stops recording.
func TestSetTapDisable(t *testing.T) {
	m, events := recordingManager(t, 4)
	ids := preallocate(t, m, 2)
	m.SetTap(nil)
	if err := m.With(ids[0], false, func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	for _, e := range *events {
		if !e.alloc {
			t.Fatalf("tap recorded an access after being disabled: %+v", e)
		}
	}
}
