package bufmgr

import (
	"sync"
	"testing"

	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/rng"
)

func mustStore(t *testing.T, pageSize int) *storage.Store {
	t.Helper()
	s, err := storage.NewStore(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHitMissAccounting(t *testing.T) {
	s := mustStore(t, 256)
	m := New(s, 4)
	a, _ := m.Allocate()
	b, _ := m.Allocate()
	// Allocation is page creation, not a logical access.
	st := m.Stats()
	if st.Misses != 0 || st.Hits != 0 {
		t.Fatalf("after allocs: %+v", st)
	}
	m.With(a, false, func([]byte) {})
	m.With(b, false, func([]byte) {})
	st = m.Stats()
	if st.Hits != 2 || st.Misses != 0 {
		t.Errorf("resident accesses should hit: %+v", st)
	}
	// Evict everything, then re-access: now a real miss.
	for i := 0; i < 5; i++ {
		m.Allocate()
	}
	m.With(a, false, func([]byte) {})
	if st = m.Stats(); st.Misses != 1 {
		t.Errorf("re-read after eviction should miss: %+v", st)
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	s := mustStore(t, 256)
	m := New(s, 2)
	a, _ := m.Allocate()
	m.With(a, true, func(p []byte) { p[0] = 42 })
	// Fill the pool to evict a.
	b, _ := m.Allocate()
	c, _ := m.Allocate()
	m.With(b, false, func([]byte) {})
	m.With(c, false, func([]byte) {})
	if m.Resident() > 2 {
		t.Fatalf("resident %d > capacity", m.Resident())
	}
	// Reading a back must see the written byte (write-back happened).
	m.With(a, false, func(p []byte) {
		if p[0] != 42 {
			t.Error("dirty page lost on eviction")
		}
	})
}

func TestLRUVictimSelection(t *testing.T) {
	s := mustStore(t, 256)
	m := New(s, 2)
	a, _ := m.Allocate()
	_, _ = m.Allocate() // pool: a, b
	m.With(a, false, func([]byte) {})
	// b is LRU now; touching a new page evicts b.
	c, _ := m.Allocate()
	_ = c
	m.With(a, false, func(p []byte) {})
	st := m.Stats()
	if st.Hits < 2 {
		t.Errorf("page a should have stayed resident: %+v", st)
	}
}

func TestCrashDropsDirtyPages(t *testing.T) {
	s := mustStore(t, 256)
	m := New(s, 4)
	a, _ := m.Allocate()
	m.With(a, true, func(p []byte) { p[0] = 7 })
	if err := m.Crash(); err != nil {
		t.Fatal(err)
	}
	m.With(a, false, func(p []byte) {
		if p[0] != 0 {
			t.Error("crash should lose unflushed writes")
		}
	})
	// Flushed writes survive a crash.
	m.With(a, true, func(p []byte) { p[0] = 9 })
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := m.Crash(); err != nil {
		t.Fatal(err)
	}
	m.With(a, false, func(p []byte) {
		if p[0] != 9 {
			t.Error("flushed write lost")
		}
	})
}

func TestClassifierStats(t *testing.T) {
	s := mustStore(t, 256)
	m := New(s, 4)
	a, _ := m.Allocate()
	b, _ := m.Allocate()
	m.SetClassifier(2, func(id storage.PageID) int {
		if id == a {
			return 0
		}
		return 1
	})
	m.ResetStats()
	m.With(a, false, func([]byte) {})
	m.With(a, false, func([]byte) {})
	m.With(b, false, func([]byte) {})
	cs := m.ClassStats()
	if cs[0].Accesses() != 2 || cs[1].Accesses() != 1 {
		t.Errorf("class stats: %+v", cs)
	}
}

func TestConcurrentAccessStress(t *testing.T) {
	s := mustStore(t, 256)
	m := New(s, 8)
	var ids []storage.PageID
	for i := 0; i < 32; i++ {
		id, _ := m.Allocate()
		ids = append(ids, id)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			for i := 0; i < 2000; i++ {
				id := ids[r.Int63n(int64(len(ids)))]
				slot := int(r.Int63n(250))
				if r.Bernoulli(0.5) {
					m.With(id, true, func(p []byte) { p[slot]++ })
				} else {
					m.With(id, false, func(p []byte) { _ = p[slot] })
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	if m.Resident() > 8 {
		t.Errorf("resident %d exceeds capacity", m.Resident())
	}
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteVisibleAcrossEviction(t *testing.T) {
	// Increment a counter on one page many times while other pages churn
	// the pool; the count must survive every eviction cycle.
	s := mustStore(t, 256)
	m := New(s, 2)
	target, _ := m.Allocate()
	var churn []storage.PageID
	for i := 0; i < 10; i++ {
		id, _ := m.Allocate()
		churn = append(churn, id)
	}
	const n = 200
	r := rng.New(1)
	for i := 0; i < n; i++ {
		m.With(target, true, func(p []byte) { p[0]++ })
		id := churn[r.Int63n(int64(len(churn)))]
		m.With(id, false, func([]byte) {})
	}
	m.With(target, false, func(p []byte) {
		if int(p[0]) != n%256 {
			t.Errorf("counter = %d, want %d", p[0], n%256)
		}
	})
}
