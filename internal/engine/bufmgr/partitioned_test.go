package bufmgr

import (
	"sync"
	"testing"

	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/rng"
)

func TestPartitionRounding(t *testing.T) {
	s := mustStore(t, 256)
	for _, tc := range []struct{ ask, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8},
	} {
		m := NewPartitioned(s, 64, tc.ask)
		if got := m.Partitions(); got != tc.want {
			t.Errorf("NewPartitioned(.., %d) = %d partitions, want %d", tc.ask, got, tc.want)
		}
	}
	// New is the unified pool.
	if got := New(s, 64).Partitions(); got != 1 {
		t.Errorf("New() = %d partitions, want 1", got)
	}
}

func TestPartitionsExceedingCapacityPanics(t *testing.T) {
	s := mustStore(t, 256)
	defer func() {
		if recover() == nil {
			t.Fatal("partitions > capacity must panic (a partition needs at least one frame)")
		}
	}()
	NewPartitioned(s, 4, 8)
}

// TestPartitionedCapacitySplit checks the whole capacity is usable: with C
// frames over P partitions every frame must be obtainable even when C is
// not a multiple of P.
func TestPartitionedCapacitySplit(t *testing.T) {
	s := mustStore(t, 256)
	m := NewPartitioned(s, 11, 4) // 3+3+3+2
	if m.Capacity() != 11 {
		t.Fatalf("capacity = %d, want 11", m.Capacity())
	}
	total := 0
	for _, p := range m.parts {
		if p.capacity < 2 || p.capacity > 3 {
			t.Errorf("partition capacity %d outside the 2-3 split", p.capacity)
		}
		total += p.capacity
	}
	if total != 11 {
		t.Fatalf("partition capacities sum to %d, want 11", total)
	}
}

// TestPartitionedStatsAggregate drives a P=4 pool through enough traffic
// to land pages in every partition, then checks the aggregated counters
// against a shadow count kept by the test.
func TestPartitionedStatsAggregate(t *testing.T) {
	s := mustStore(t, 256)
	m := NewPartitioned(s, 8, 4)
	var ids []storage.PageID
	for i := 0; i < 32; i++ {
		id, err := m.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	seen := map[*partition]bool{}
	for _, id := range ids {
		seen[m.partOf(id)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("32 sequential pages landed in %d of 4 partitions — hash is not spreading", len(seen))
	}
	var accesses int64
	r := rng.New(3)
	for i := 0; i < 500; i++ {
		id := ids[r.Int63n(int64(len(ids)))]
		if err := m.With(id, i%3 == 0, func(p []byte) { p[1] = byte(i) }); err != nil {
			t.Fatal(err)
		}
		accesses++
	}
	st := m.Stats()
	if st.Accesses() != accesses {
		t.Errorf("aggregated accesses = %d, want %d", st.Accesses(), accesses)
	}
	if st.Misses == 0 || st.Hits == 0 {
		t.Errorf("a 32-page working set over 8 frames should both hit and miss: %+v", st)
	}
	if got := m.Resident(); got > m.Capacity() {
		t.Errorf("resident %d exceeds capacity %d", got, m.Capacity())
	}
	m.ResetStats()
	if st = m.Stats(); st.Accesses() != 0 {
		t.Errorf("ResetStats left %+v", st)
	}
	if err := m.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// After FlushAll every durable image must carry the last committed
	// byte, partition by partition.
	buf := make([]byte, 256)
	for _, id := range ids {
		if err := s.Read(id, buf); err != nil {
			t.Fatalf("page %d after FlushAll: %v", id, err)
		}
	}
}

// TestPartitionedConcurrentStress hammers a small partitioned pool from
// many goroutines (hits, misses, evictions, dirty write-backs, allocation)
// and then checks that per-page content survived. Run under -race this is
// the partitioned pool's data-race gate.
func TestPartitionedConcurrentStress(t *testing.T) {
	s := mustStore(t, 256)
	m := NewPartitioned(s, 16, 8)
	const pages = 64
	var ids []storage.PageID
	for i := 0; i < pages; i++ {
		id, err := m.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.With(id, true, func(p []byte) { p[0] = byte(i) }); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	m.ResetStats() // the setup writes above are not part of the measurement
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rng.New(uint64(w) + 1)
			for i := 0; i < 400; i++ {
				n := int(r.Int63n(pages))
				err := m.With(ids[n], false, func(p []byte) {
					if p[0] != byte(n) {
						t.Errorf("page %d carries content of page %d", n, p[0])
					}
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := m.Stats()
	if st.Accesses() != 8*400 {
		t.Errorf("accesses = %d, want %d", st.Accesses(), 8*400)
	}
}
