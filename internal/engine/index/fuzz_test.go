package index

import (
	"encoding/binary"
	"testing"
)

// FuzzBTreeOps drives the tree with an arbitrary operation tape checked
// against a map reference. Each 9-byte chunk is one operation: 1 opcode
// byte + 8 key bytes.
func FuzzBTreeOps(f *testing.F) {
	tape := make([]byte, 0, 9*64)
	for i := 0; i < 64; i++ {
		op := byte(i % 3)
		var k [8]byte
		binary.LittleEndian.PutUint64(k[:], uint64(i*37%100))
		tape = append(tape, op)
		tape = append(tape, k[:]...)
	}
	f.Add(tape)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := New()
		ref := make(map[uint64]uint64)
		for len(data) >= 9 {
			op := data[0]
			key := binary.LittleEndian.Uint64(data[1:9]) % 512
			data = data[9:]
			switch op % 3 {
			case 0:
				tr.Set(key, key*3)
				ref[key] = key * 3
			case 1:
				err := tr.Delete(key)
				_, existed := ref[key]
				if existed != (err == nil) {
					t.Fatalf("delete(%d) err=%v existed=%v", key, err, existed)
				}
				delete(ref, key)
			case 2:
				v, ok := tr.Get(key)
				rv, rok := ref[key]
				if ok != rok || (ok && v != rv) {
					t.Fatalf("get(%d) = %d,%v want %d,%v", key, v, ok, rv, rok)
				}
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("len %d != ref %d", tr.Len(), len(ref))
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}
