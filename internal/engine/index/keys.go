package index

// Composite-key packing for TPC-C. All benchmark keys fit comfortably in
// 64 bits; packing keeps the B+tree monomorphic and fast while preserving
// the lexicographic order of the component tuple, so range scans over a
// prefix (e.g. all orders of one district) are contiguous key ranges.
//
// Field widths: warehouse 16 bits, district 8 bits, customer/name 16 bits,
// item 24 bits. Order ids get 40 bits inside (w,d)-prefixed keys, bounding
// orders per district at ~10^12 — far beyond the 180-day benchmark run.

// KeyWD packs (warehouse, district).
func KeyWD(w, d int64) uint64 {
	return uint64(w)<<8 | uint64(d)
}

// KeyWDC packs (warehouse, district, customer).
func KeyWDC(w, d, c int64) uint64 {
	return uint64(w)<<24 | uint64(d)<<16 | uint64(c)
}

// KeyWI packs (warehouse, item) for the stock relation.
func KeyWI(w, i int64) uint64 {
	return uint64(w)<<24 | uint64(i)
}

// KeyWDO packs (warehouse, district, order) so that orders of one district
// are contiguous and ascending in order id: 16+8+40 bits.
func KeyWDO(w, d, o int64) uint64 {
	return uint64(w)<<48 | uint64(d)<<40 | uint64(o)
}

// RangeWDO returns the inclusive key range covering every order id of one
// district.
func RangeWDO(w, d int64) (lo, hi uint64) {
	lo = KeyWDO(w, d, 0)
	hi = lo | (1<<40 - 1)
	return lo, hi
}

// KeyWDOL packs (warehouse, district, order, line) for order lines:
// 16+8+32+8 bits (order ids per district bounded at ~4.3e9 here).
func KeyWDOL(w, d, o, l int64) uint64 {
	return uint64(w)<<48 | uint64(d)<<40 | uint64(o)<<8 | uint64(l)
}

// RangeWDOLOrder returns the key range covering all lines of one order.
func RangeWDOLOrder(w, d, o int64) (lo, hi uint64) {
	lo = KeyWDOL(w, d, o, 0)
	hi = lo | 0xff
	return lo, hi
}

// KeyWDNC packs (warehouse, district, last-name ordinal, customer) for the
// customer-by-name secondary index: 16+8+16+16 bits. Scanning the
// (w, d, name) prefix yields the customers sharing the name sorted by
// customer id (the benchmark sorts by first name; with generated names the
// id order is an equivalent deterministic tiebreak).
func KeyWDNC(w, d, name, c int64) uint64 {
	return uint64(w)<<40 | uint64(d)<<32 | uint64(name)<<16 | uint64(c)
}

// RangeWDNC returns the key range covering one (warehouse, district, name).
func RangeWDNC(w, d, name int64) (lo, hi uint64) {
	lo = KeyWDNC(w, d, name, 0)
	hi = lo | 0xffff
	return lo, hi
}

// KeyWDCO packs (warehouse, district, customer, order) for the
// order-by-customer secondary index: 12+8+16+28 bits.
func KeyWDCO(w, d, c, o int64) uint64 {
	return uint64(w)<<52 | uint64(d)<<44 | uint64(c)<<28 | uint64(o)
}

// RangeWDCO returns the key range covering one customer's orders.
func RangeWDCO(w, d, c int64) (lo, hi uint64) {
	lo = KeyWDCO(w, d, c, 0)
	hi = lo | (1<<28 - 1)
	return lo, hi
}
