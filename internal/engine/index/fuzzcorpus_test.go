package index

import (
	"encoding/binary"
	"flag"
	"path/filepath"
	"testing"

	"tpccmodel/internal/fuzzcorpus"
)

// regenFuzzCorpus rewrites the checked-in fuzz seed files:
// `go test ./internal/engine/index/ -run FuzzSeedCorpus -regen-fuzz-corpus`
// (or `make regen-fuzz-corpus`).
var regenFuzzCorpus = flag.Bool("regen-fuzz-corpus", false, "rewrite testdata/fuzz seed corpora")

// FuzzBTreeOps opcodes (op % 3): see fuzz_test.go.
const (
	opSet = iota
	opDelete
	opGet
)

// buildTape assembles a FuzzBTreeOps operation tape: 1 opcode byte + 8
// little-endian key bytes per operation.
func buildTape(f func(emit func(op byte, key uint64))) []byte {
	var tape []byte
	f(func(op byte, key uint64) {
		var k [8]byte
		binary.LittleEndian.PutUint64(k[:], key)
		tape = append(tape, op)
		tape = append(tape, k[:]...)
	})
	return tape
}

// btreeOpsSeeds aims each seed at a distinct structural stress: splits
// from monotone insertion in both directions, merge pressure from a full
// drain, steady-state churn, overwrite of live keys, and deletes against
// an empty tree.
func btreeOpsSeeds() map[string][]byte {
	seeds := map[string]func(emit func(op byte, key uint64)){
		"ascending-fill-then-drain": func(emit func(byte, uint64)) {
			for k := uint64(0); k < 160; k++ {
				emit(opSet, k)
			}
			for k := uint64(0); k < 160; k++ {
				emit(opDelete, k)
			}
		},
		"descending-fill": func(emit func(byte, uint64)) {
			for k := uint64(160); k > 0; k-- {
				emit(opSet, k)
				emit(opGet, k)
			}
		},
		"interleaved-churn": func(emit func(byte, uint64)) {
			for i := uint64(0); i < 120; i++ {
				emit(opSet, i*7%256)
				emit(opDelete, i*3%256)
				emit(opGet, i*5%256)
			}
		},
		"overwrite-live-keys": func(emit func(byte, uint64)) {
			for round := 0; round < 8; round++ {
				for k := uint64(0); k < 16; k++ {
					emit(opSet, k)
					emit(opGet, k)
				}
			}
		},
		"delete-missing": func(emit func(byte, uint64)) {
			for k := uint64(0); k < 64; k++ {
				emit(opDelete, k*11%512)
			}
		},
	}
	out := make(map[string][]byte, len(seeds))
	for name, build := range seeds {
		out[name] = fuzzcorpus.Marshal(buildTape(build))
	}
	return out
}

// TestFuzzSeedCorpus keeps the checked-in seeds under testdata/fuzz/ in
// sync with their generators. The seeds double as ordinary corpus cases:
// plain `go test` runs every file through FuzzBTreeOps.
func TestFuzzSeedCorpus(t *testing.T) {
	fuzzcorpus.WriteOrCompare(t, filepath.Join("testdata", "fuzz", "FuzzBTreeOps"),
		btreeOpsSeeds(), *regenFuzzCorpus)
}
