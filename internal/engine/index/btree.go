// Package index implements the engine's ordered index: an in-memory B+tree
// over uint64 keys with doubly-linked leaves for range scans, plus key
// packing helpers for TPC-C's composite keys.
//
// The paper assumes "an ordered multi-keyed index so that the correct
// tuple can be fetched in just one index look up" (the Max/Min selects of
// Order-Status and Delivery) and charges no I/O for index traversal, so
// the tree is memory-resident by design. Deletion follows the
// empty-page-only reclamation strategy used by production B-trees such as
// PostgreSQL's nbtree: keys are removed in place and a node is unlinked
// only when it becomes empty, so separators never need rebalancing.
package index

import (
	"fmt"
	"sort"
)

// maxKeys is the fan-out bound per node.
const maxKeys = 64

// ErrDuplicate is returned by Insert for an existing key.
var ErrDuplicate = fmt.Errorf("index: duplicate key")

// ErrNotFound is returned for absent keys.
var ErrNotFound = fmt.Errorf("index: key not found")

type node struct {
	leaf bool
	keys []uint64
	// vals parallels keys in leaves.
	vals []uint64
	// kids has len(keys)+1 entries in internal nodes: kids[i] holds keys
	// k with (i == 0 || k >= keys[i-1]) && (i == len(keys) || k < keys[i]).
	kids []*node
	// prev/next chain leaves in key order.
	prev, next *node
	// Embedded backing arrays for keys/vals/kids. A node transiently
	// overfills to maxKeys+1 keys (and an internal parent to maxKeys+2
	// kids) before split restores the bound, so the arrays carry that
	// slack and inserts never grow a slice through the allocator.
	keysBuf [maxKeys + 1]uint64
	valsBuf [maxKeys + 1]uint64
	kidsBuf [maxKeys + 2]*node
}

// BTree is a unique-key B+tree mapping uint64 to uint64.
type BTree struct {
	root *node
	size int
	// path is findLeaf's reusable descent scratch. Mutating operations
	// (Insert/Set/Delete) already require external exclusive locking, so
	// sharing it is safe; read-only operations descend via leafFor and
	// never touch it, keeping concurrent readers allocation-free.
	path []*node
	// chunk backs batched node allocation; splits carve nodes from it so
	// steady-state index growth costs amortized fractions of a heap
	// allocation per split. Mutators hold an exclusive lock (see path).
	chunk []node
}

// nodeChunkSize is how many nodes are allocated per chunk.
const nodeChunkSize = 16

// newNode carves an initialized node from the tree's chunk.
func (t *BTree) newNode(leaf bool) *node {
	if len(t.chunk) == 0 {
		t.chunk = make([]node, nodeChunkSize)
	}
	n := &t.chunk[0]
	t.chunk = t.chunk[1:]
	n.leaf = leaf
	n.keys = n.keysBuf[:0]
	n.vals = n.valsBuf[:0]
	n.kids = n.kidsBuf[:0]
	return n
}

// New creates an empty tree.
func New() *BTree {
	t := &BTree{}
	t.root = t.newNode(true)
	return t
}

// Len returns the number of keys.
func (t *BTree) Len() int { return t.size }

// findLeaf descends to the leaf that would hold key, recording the path
// in the tree's reusable scratch. Only for mutating operations, which
// hold an exclusive lock.
func (t *BTree) findLeaf(key uint64) (*node, []*node) {
	n := t.root
	path := t.path[:0]
	for !n.leaf {
		path = append(path, n)
		i := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
		n = n.kids[i]
	}
	t.path = path
	return n, path
}

// leafFor descends to the leaf that would hold key without recording the
// path — the allocation-free descent for read-only operations.
func (t *BTree) leafFor(key uint64) *node {
	n := t.root
	for !n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
		n = n.kids[i]
	}
	return n
}

// Get returns the value for key.
func (t *BTree) Get(key uint64) (uint64, bool) {
	n := t.leafFor(key)
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i], true
	}
	return 0, false
}

// Insert adds key -> val, returning ErrDuplicate if key exists.
func (t *BTree) Insert(key, val uint64) error {
	leaf, path := t.findLeaf(key)
	i := sort.Search(len(leaf.keys), func(i int) bool { return leaf.keys[i] >= key })
	if i < len(leaf.keys) && leaf.keys[i] == key {
		return ErrDuplicate
	}
	leaf.keys = insertU64(leaf.keys, i, key)
	leaf.vals = insertU64(leaf.vals, i, val)
	t.size++
	if len(leaf.keys) > maxKeys {
		t.split(leaf, path)
	}
	return nil
}

// Set adds or replaces key -> val.
func (t *BTree) Set(key, val uint64) {
	leaf, path := t.findLeaf(key)
	i := sort.Search(len(leaf.keys), func(i int) bool { return leaf.keys[i] >= key })
	if i < len(leaf.keys) && leaf.keys[i] == key {
		leaf.vals[i] = val
		return
	}
	leaf.keys = insertU64(leaf.keys, i, key)
	leaf.vals = insertU64(leaf.vals, i, val)
	t.size++
	if len(leaf.keys) > maxKeys {
		t.split(leaf, path)
	}
}

func insertU64(s []uint64, i int, v uint64) []uint64 {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeU64(s []uint64, i int) []uint64 {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

// split divides an overfull node, propagating up the path.
func (t *BTree) split(n *node, path []*node) {
	for {
		var right *node
		var sep uint64
		mid := len(n.keys) / 2
		if n.leaf {
			right = t.newNode(true)
			right.keys = append(right.keys, n.keys[mid:]...)
			right.vals = append(right.vals, n.vals[mid:]...)
			n.keys = n.keys[:mid]
			n.vals = n.vals[:mid]
			sep = right.keys[0]
			right.next = n.next
			if right.next != nil {
				right.next.prev = right
			}
			right.prev = n
			n.next = right
		} else {
			right = t.newNode(false)
			// The middle key moves up; right gets keys after it.
			sep = n.keys[mid]
			right.keys = append(right.keys, n.keys[mid+1:]...)
			right.kids = append(right.kids, n.kids[mid+1:]...)
			n.keys = n.keys[:mid]
			n.kids = n.kids[:mid+1]
		}
		if len(path) == 0 {
			r := t.newNode(false)
			r.keys = append(r.keys, sep)
			r.kids = append(r.kids, n, right)
			t.root = r
			return
		}
		parent := path[len(path)-1]
		path = path[:len(path)-1]
		i := sort.Search(len(parent.keys), func(i int) bool { return sep < parent.keys[i] })
		parent.keys = insertU64(parent.keys, i, sep)
		parent.kids = append(parent.kids, nil)
		copy(parent.kids[i+2:], parent.kids[i+1:])
		parent.kids[i+1] = right
		if len(parent.keys) <= maxKeys {
			return
		}
		n = parent
	}
}

// Delete removes key, returning ErrNotFound if absent. Nodes are unlinked
// only when empty.
func (t *BTree) Delete(key uint64) error {
	leaf, path := t.findLeaf(key)
	i := sort.Search(len(leaf.keys), func(i int) bool { return leaf.keys[i] >= key })
	if i >= len(leaf.keys) || leaf.keys[i] != key {
		return ErrNotFound
	}
	leaf.keys = removeU64(leaf.keys, i)
	leaf.vals = removeU64(leaf.vals, i)
	t.size--
	if len(leaf.keys) == 0 {
		t.unlink(leaf, path)
	}
	return nil
}

// unlink removes an empty node from its parent, cascading upward.
func (t *BTree) unlink(n *node, path []*node) {
	if n.leaf {
		if n.prev != nil {
			n.prev.next = n.next
		}
		if n.next != nil {
			n.next.prev = n.prev
		}
	}
	if len(path) == 0 {
		// Empty root: reset to an empty leaf (or collapse a single-
		// child internal root).
		if !n.leaf && len(n.kids) == 1 {
			t.root = n.kids[0]
		} else if n.leaf {
			n.prev, n.next = nil, nil
			t.root = n
		}
		return
	}
	parent := path[len(path)-1]
	idx := -1
	for i, k := range parent.kids {
		if k == n {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic("index: corrupt parent link")
	}
	// Remove the child and one separator (the one to its left, or the
	// first one when removing kids[0]).
	parent.kids = append(parent.kids[:idx], parent.kids[idx+1:]...)
	if len(parent.keys) > 0 {
		sep := idx - 1
		if sep < 0 {
			sep = 0
		}
		parent.keys = removeU64(parent.keys, sep)
	}
	if len(parent.kids) == 0 {
		t.unlink(parent, path[:len(path)-1])
	} else if parent == t.root && len(parent.kids) == 1 {
		t.root = parent.kids[0]
	}
}

// Min returns the smallest key >= lo with its value.
func (t *BTree) Min(lo uint64) (key, val uint64, ok bool) {
	it := t.Seek(lo)
	return it.Next()
}

// Max returns the largest key <= hi with its value, by scanning from the
// leaf holding hi backward.
func (t *BTree) Max(hi uint64) (key, val uint64, ok bool) {
	n := t.leafFor(hi)
	for n != nil {
		for i := len(n.keys) - 1; i >= 0; i-- {
			if n.keys[i] <= hi {
				return n.keys[i], n.vals[i], true
			}
		}
		n = n.prev
	}
	return 0, 0, false
}

// Iter iterates leaf entries in ascending key order.
type Iter struct {
	n *node
	i int
}

// Seek positions an iterator at the first key >= lo. The iterator is
// returned by value so seeking does not allocate.
func (t *BTree) Seek(lo uint64) Iter {
	n := t.leafFor(lo)
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
	return Iter{n: n, i: i}
}

// Next returns the current entry and advances; ok is false at the end.
func (it *Iter) Next() (key, val uint64, ok bool) {
	for it.n != nil && it.i >= len(it.n.keys) {
		it.n = it.n.next
		it.i = 0
	}
	if it.n == nil {
		return 0, 0, false
	}
	k, v := it.n.keys[it.i], it.n.vals[it.i]
	it.i++
	return k, v, true
}

// AscendRange calls fn for each entry with lo <= key <= hi in order;
// returning false stops the scan.
func (t *BTree) AscendRange(lo, hi uint64, fn func(key, val uint64) bool) {
	it := t.Seek(lo)
	for {
		k, v, ok := it.Next()
		if !ok || k > hi {
			return
		}
		if !fn(k, v) {
			return
		}
	}
}

// Validate checks structural invariants (ordering, separator consistency,
// leaf chaining) and returns the first violation found. Used by tests.
func (t *BTree) Validate() error {
	var prevKey *uint64
	var count int
	var check func(n *node, lo, hi *uint64) error
	check = func(n *node, lo, hi *uint64) error {
		if n.leaf {
			for _, k := range n.keys {
				if lo != nil && k < *lo {
					return fmt.Errorf("index: key %d below separator %d", k, *lo)
				}
				if hi != nil && k >= *hi {
					return fmt.Errorf("index: key %d at/above separator %d", k, *hi)
				}
				if prevKey != nil && k <= *prevKey {
					return fmt.Errorf("index: keys not strictly ascending at %d", k)
				}
				kk := k
				prevKey = &kk
				count++
			}
			return nil
		}
		if len(n.kids) != len(n.keys)+1 {
			return fmt.Errorf("index: internal node with %d keys, %d kids", len(n.keys), len(n.kids))
		}
		for i, kid := range n.kids {
			var l, h *uint64
			if i > 0 {
				l = &n.keys[i-1]
			} else {
				l = lo
			}
			if i < len(n.keys) {
				h = &n.keys[i]
			} else {
				h = hi
			}
			if err := check(kid, l, h); err != nil {
				return err
			}
		}
		return nil
	}
	if err := check(t.root, nil, nil); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("index: size %d but %d keys reachable", t.size, count)
	}
	return nil
}
