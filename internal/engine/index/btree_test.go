package index

import (
	"sort"
	"testing"
	"testing/quick"

	"tpccmodel/internal/rng"
)

func TestInsertGet(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 1000; i++ {
		if err := tr.Insert(i*7%1000, i); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := uint64(0); i < 1000; i++ {
		v, ok := tr.Get(i * 7 % 1000)
		if !ok || v != i {
			t.Fatalf("Get(%d) = %d, %v", i*7%1000, v, ok)
		}
	}
	if _, ok := tr.Get(5000); ok {
		t.Error("absent key found")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDuplicate(t *testing.T) {
	tr := New()
	if err := tr.Insert(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, 20); err != ErrDuplicate {
		t.Errorf("expected ErrDuplicate, got %v", err)
	}
	tr.Set(1, 30)
	if v, _ := tr.Get(1); v != 30 {
		t.Errorf("Set did not replace: %d", v)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d after Set of existing key", tr.Len())
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 500; i++ {
		tr.Set(i, i)
	}
	for i := uint64(0); i < 500; i += 2 {
		if err := tr.Delete(i); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if tr.Len() != 250 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := uint64(0); i < 500; i++ {
		_, ok := tr.Get(i)
		if ok != (i%2 == 1) {
			t.Fatalf("Get(%d) present=%v", i, ok)
		}
	}
	if err := tr.Delete(1000); err != ErrNotFound {
		t.Errorf("expected ErrNotFound, got %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAllThenReuse(t *testing.T) {
	tr := New()
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 300; i++ {
			tr.Set(i, i+uint64(round))
		}
		for i := uint64(0); i < 300; i++ {
			if err := tr.Delete(i); err != nil {
				t.Fatalf("round %d delete %d: %v", round, i, err)
			}
		}
		if tr.Len() != 0 {
			t.Fatalf("round %d: Len = %d", round, tr.Len())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestIterationOrder(t *testing.T) {
	tr := New()
	keys := []uint64{50, 10, 90, 30, 70, 20, 80, 40, 60, 100}
	for _, k := range keys {
		tr.Set(k, k*2)
	}
	var got []uint64
	tr.AscendRange(0, ^uint64(0), func(k, v uint64) bool {
		if v != k*2 {
			t.Fatalf("value mismatch at %d", k)
		}
		got = append(got, k)
		return true
	})
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Errorf("iteration not sorted: %v", got)
	}
	if len(got) != len(keys) {
		t.Errorf("iterated %d keys, want %d", len(got), len(keys))
	}
}

func TestAscendRangeBounds(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 100; i++ {
		tr.Set(i*10, i)
	}
	var got []uint64
	tr.AscendRange(250, 500, func(k, v uint64) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{250, 260, 270, 280, 290, 300, 310, 320, 330, 340, 350,
		360, 370, 380, 390, 400, 410, 420, 430, 440, 450, 460, 470, 480, 490, 500}
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Early stop.
	count := 0
	tr.AscendRange(0, ^uint64(0), func(k, v uint64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop iterated %d", count)
	}
}

func TestMinMax(t *testing.T) {
	tr := New()
	for _, k := range []uint64{100, 200, 300, 400} {
		tr.Set(k, k+1)
	}
	if k, v, ok := tr.Min(150); !ok || k != 200 || v != 201 {
		t.Errorf("Min(150) = %d,%d,%v", k, v, ok)
	}
	if k, _, ok := tr.Min(100); !ok || k != 100 {
		t.Errorf("Min(100) = %d,%v", k, ok)
	}
	if _, _, ok := tr.Min(500); ok {
		t.Error("Min beyond max should be not-ok")
	}
	if k, v, ok := tr.Max(350); !ok || k != 300 || v != 301 {
		t.Errorf("Max(350) = %d,%d,%v", k, v, ok)
	}
	if k, _, ok := tr.Max(^uint64(0)); !ok || k != 400 {
		t.Errorf("Max(inf) = %d,%v", k, ok)
	}
	if _, _, ok := tr.Max(50); ok {
		t.Error("Max below min should be not-ok")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if _, ok := tr.Get(1); ok {
		t.Error("empty Get")
	}
	if _, _, ok := tr.Min(0); ok {
		t.Error("empty Min")
	}
	if _, _, ok := tr.Max(^uint64(0)); ok {
		t.Error("empty Max")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

// TestRandomizedAgainstReference property-tests the tree against a map +
// sorted-slice reference model through interleaved inserts and deletes.
func TestRandomizedAgainstReference(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		tr := New()
		ref := make(map[uint64]uint64)
		for op := 0; op < 4000; op++ {
			k := uint64(r.Int63n(800))
			switch r.Int63n(3) {
			case 0, 1:
				v := r.Uint64()
				tr.Set(k, v)
				ref[k] = v
			case 2:
				err := tr.Delete(k)
				_, existed := ref[k]
				if existed != (err == nil) {
					t.Logf("delete(%d): existed=%v err=%v", k, existed, err)
					return false
				}
				delete(ref, k)
			}
		}
		if tr.Len() != len(ref) {
			t.Logf("len %d != ref %d", tr.Len(), len(ref))
			return false
		}
		if err := tr.Validate(); err != nil {
			t.Log(err)
			return false
		}
		// Full-order comparison.
		keys := make([]uint64, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		i := 0
		okAll := true
		tr.AscendRange(0, ^uint64(0), func(k, v uint64) bool {
			if i >= len(keys) || k != keys[i] || v != ref[k] {
				okAll = false
				return false
			}
			i++
			return true
		})
		return okAll && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestKeyPackingOrder(t *testing.T) {
	// Lexicographic tuple order must match packed uint64 order.
	if !(KeyWDO(1, 2, 3) < KeyWDO(1, 2, 4)) ||
		!(KeyWDO(1, 2, 1<<39) < KeyWDO(1, 3, 0)) ||
		!(KeyWDO(1, 9, 1<<39) < KeyWDO(2, 0, 0)) {
		t.Error("KeyWDO ordering broken")
	}
	lo, hi := RangeWDO(3, 4)
	if !(lo <= KeyWDO(3, 4, 0) && KeyWDO(3, 4, 1<<40-1) <= hi) {
		t.Error("RangeWDO does not cover its district")
	}
	if hi >= KeyWDO(3, 5, 0) || lo <= KeyWDO(3, 3, 1<<40-1) {
		t.Error("RangeWDO overlaps neighbors")
	}

	lo, hi = RangeWDOLOrder(1, 2, 3)
	if !(lo <= KeyWDOL(1, 2, 3, 0) && KeyWDOL(1, 2, 3, 9) <= hi) {
		t.Error("RangeWDOLOrder does not cover its order")
	}
	if hi >= KeyWDOL(1, 2, 4, 0) {
		t.Error("RangeWDOLOrder overlaps next order")
	}

	lo, hi = RangeWDNC(1, 2, 77)
	if !(lo <= KeyWDNC(1, 2, 77, 0) && KeyWDNC(1, 2, 77, 2999) <= hi) {
		t.Error("RangeWDNC does not cover its name")
	}
	if hi >= KeyWDNC(1, 2, 78, 0) {
		t.Error("RangeWDNC overlaps next name")
	}

	lo, hi = RangeWDCO(1, 2, 3)
	if !(lo <= KeyWDCO(1, 2, 3, 0) && KeyWDCO(1, 2, 3, 1<<28-1) <= hi) {
		t.Error("RangeWDCO does not cover its customer")
	}
	if hi >= KeyWDCO(1, 2, 4, 0) {
		t.Error("RangeWDCO overlaps next customer")
	}
}

func TestLargeSequentialInsert(t *testing.T) {
	tr := New()
	const n = 100000
	for i := uint64(0); i < n; i++ {
		tr.Set(i, i)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Spot checks.
	for _, k := range []uint64{0, 1, n / 2, n - 1} {
		if v, ok := tr.Get(k); !ok || v != k {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
}
