package workload

import (
	"math"
	"testing"

	"tpccmodel/internal/core"
	"tpccmodel/internal/tpcc"
)

func testConfig(warehouses int, seed uint64) Config {
	return DefaultConfig(warehouses, seed)
}

func TestConfigValidate(t *testing.T) {
	c := testConfig(2, 1)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := c
	bad.PayByNameProb = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("probability > 1 should fail")
	}
	bad = c
	bad.DB.Warehouses = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid DB config should fail")
	}
	bad = c
	bad.Mix = Config{}.Mix
	if err := bad.Validate(); err == nil {
		t.Error("zero mix should fail")
	}
}

func TestDeterminism(t *testing.T) {
	g1, _ := New(testConfig(2, 99))
	g2, _ := New(testConfig(2, 99))
	var t1, t2 Txn
	for i := 0; i < 500; i++ {
		g1.Next(&t1)
		g2.Next(&t2)
		if t1.Type != t2.Type || len(t1.Accesses) != len(t2.Accesses) {
			t.Fatal("same seed must generate identical streams")
		}
		for j := range t1.Accesses {
			if t1.Accesses[j] != t2.Accesses[j] {
				t.Fatal("access mismatch")
			}
		}
	}
}

func TestPrepopulationState(t *testing.T) {
	g, err := New(testConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	orders, pending, ols, hist := g.Sizes()
	wantOrders := int64(2 * 10 * 3000)
	if orders != wantOrders {
		t.Errorf("orders = %d, want %d", orders, wantOrders)
	}
	if pending != int64(2*10*900) {
		t.Errorf("pending = %d, want %d", pending, 2*10*900)
	}
	if ols != wantOrders*10 {
		t.Errorf("order-lines = %d, want %d", ols, wantOrders*10)
	}
	if hist != 0 {
		t.Errorf("history = %d, want 0", hist)
	}
	// Every customer has a last order after prepopulation.
	for i, ref := range g.lastOrder {
		if ref.orderTuple < 0 {
			t.Fatalf("customer %d has no last order after prepopulation", i)
		}
	}
}

func TestMixConvergence(t *testing.T) {
	g, _ := New(testConfig(1, 7))
	var txn Txn
	const n = 200000
	for i := 0; i < n; i++ {
		g.Next(&txn)
	}
	counts := g.TxnCounts()
	mix := tpcc.DefaultMix()
	for tt := core.TxnType(0); tt < core.NumTxnTypes; tt++ {
		got := float64(counts[tt]) / n
		want := mix.Fraction(tt)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%s fraction = %.4f, want %.2f", tt, got, want)
		}
	}
}

func collect(t *testing.T, g *Generator, typ core.TxnType) Txn {
	t.Helper()
	var txn Txn
	for i := 0; i < 100000; i++ {
		g.Next(&txn)
		if txn.Type == typ {
			out := Txn{Type: txn.Type, DeliverySkipped: txn.DeliverySkipped}
			out.Accesses = append(out.Accesses, txn.Accesses...)
			return out
		}
	}
	t.Fatalf("no %s transaction generated in 100000 draws", typ)
	return Txn{}
}

func countOps(txn Txn) (sel, upd, ins, del, nus, join int) {
	for _, a := range txn.Accesses {
		switch a.Op {
		case core.Select:
			sel++
		case core.Update:
			upd++
		case core.Insert:
			ins++
		case core.Delete:
			del++
		case core.NonUniqueSelect:
			nus++
		case core.JoinFetch:
			join++
		}
	}
	return
}

// TestNewOrderCallCounts verifies Table 2's New-Order row: 23 selects, 11
// updates, 12 inserts.
func TestNewOrderCallCounts(t *testing.T) {
	g, _ := New(testConfig(2, 3))
	txn := collect(t, g, core.TxnNewOrder)
	sel, upd, ins, del, nus, join := countOps(txn)
	if sel != 23 || upd != 11 || ins != 12 || del != 0 || nus != 0 || join != 0 {
		t.Errorf("New-Order ops = sel %d upd %d ins %d del %d nus %d join %d; want 23/11/12/0/0/0",
			sel, upd, ins, del, nus, join)
	}
}

// TestPaymentCallCounts verifies Table 2's Payment row: 4.2 selects on
// average (2 + 0.4*1 + 0.6*3), 3 updates, 1 insert.
func TestPaymentCallCounts(t *testing.T) {
	g, _ := New(testConfig(2, 3))
	var selSum, n float64
	var txn Txn
	for i := 0; i < 60000; i++ {
		g.Next(&txn)
		if txn.Type != core.TxnPayment {
			continue
		}
		sel, upd, ins, _, nus, _ := countOps(txn)
		if upd != 3 || ins != 1 {
			t.Fatalf("Payment upd %d ins %d; want 3/1", upd, ins)
		}
		if !(sel == 3 && nus == 0 || sel == 2 && nus == 3) {
			t.Fatalf("Payment sel %d nus %d; want 3/0 (by id) or 2/3 (by name)", sel, nus)
		}
		selSum += float64(sel + nus)
		n++
	}
	if avg := selSum / n; math.Abs(avg-4.2) > 0.05 {
		t.Errorf("Payment average selects = %.3f, want 4.2", avg)
	}
}

// TestOrderStatusCallCounts verifies the Order-Status access pattern:
// 2.2 customer tuples on average plus 1 order and 10 order-lines.
func TestOrderStatusCallCounts(t *testing.T) {
	g, _ := New(testConfig(2, 3))
	var total, n float64
	var txn Txn
	for i := 0; i < 100000; i++ {
		g.Next(&txn)
		if txn.Type != core.TxnOrderStatus {
			continue
		}
		sel, upd, ins, del, nus, join := countOps(txn)
		if upd+ins+del+join != 0 {
			t.Fatal("Order-Status must be read-only")
		}
		total += float64(sel + nus)
		n++
	}
	// 2.2 customer + 1 order + 10 order-lines = 13.2 tuple accesses.
	if avg := total / n; math.Abs(avg-13.2) > 0.1 {
		t.Errorf("Order-Status average accesses = %.3f, want 13.2", avg)
	}
}

// TestDeliveryCallCounts verifies Table 2's Delivery row: 130 selects, 120
// updates, 10 deletes when all ten districts have pending orders.
func TestDeliveryCallCounts(t *testing.T) {
	g, _ := New(testConfig(2, 3))
	// Immediately after prepopulation every district has 900 pending.
	txn := collect(t, g, core.TxnDelivery)
	if txn.DeliverySkipped > 0 {
		t.Skipf("delivery skipped %d districts (pending drained)", txn.DeliverySkipped)
	}
	sel, upd, ins, del, nus, join := countOps(txn)
	if sel != 130 || upd != 120 || del != 10 || ins != 0 || nus != 0 || join != 0 {
		t.Errorf("Delivery ops = sel %d upd %d del %d ins %d nus %d join %d; want 130/120/10/0/0/0",
			sel, upd, del, ins, nus, join)
	}
}

// TestStockLevelCallCounts verifies the Stock-Level join: 1 district select
// plus 200 order-line and 200 stock fetches.
func TestStockLevelCallCounts(t *testing.T) {
	g, _ := New(testConfig(2, 3))
	txn := collect(t, g, core.TxnStockLevel)
	sel, upd, ins, del, _, join := countOps(txn)
	if sel != 1 || join != 400 || upd+ins+del != 0 {
		t.Errorf("Stock-Level ops = sel %d join %d; want 1 select + 400 join fetches", sel, join)
	}
}

func TestAccessOrdinalsInRange(t *testing.T) {
	cfg := testConfig(3, 11)
	g, _ := New(cfg)
	var txn Txn
	for i := 0; i < 20000; i++ {
		g.Next(&txn)
		orders, _, ols, hist := g.Sizes()
		for _, a := range txn.Accesses {
			var limit int64
			switch a.Rel {
			case core.Order:
				limit = orders
			case core.OrderLine:
				limit = ols
			case core.History:
				limit = hist
			case core.NewOrder:
				limit = 1 << 62 // append counter; bounded by orders*1
			default:
				limit = cfg.DB.Cardinality(a.Rel)
			}
			if a.Tuple < 0 || a.Tuple >= limit {
				t.Fatalf("%s access to tuple %d outside [0, %d)", a.Rel, a.Tuple, limit)
			}
		}
	}
}

// TestNewOrderRelationDrains verifies the paper's mix-tuning argument: with
// 5% Delivery the New-Order relation shrinks from its initial 900-per-
// district population toward a small steady state.
func TestNewOrderRelationDrains(t *testing.T) {
	g, _ := New(testConfig(1, 5))
	_, before, _, _ := g.Sizes()
	var txn Txn
	for i := 0; i < 150000; i++ {
		g.Next(&txn)
	}
	_, after, _, _ := g.Sizes()
	if after >= before {
		t.Errorf("pending new-orders grew from %d to %d under a draining mix", before, after)
	}
}

// TestNewOrderRelationGrowsUnderBadMix verifies the paper's warning: 45%
// New-Order with only 4% Delivery grows without bound.
func TestNewOrderRelationGrowsUnderBadMix(t *testing.T) {
	cfg := testConfig(1, 5)
	cfg.Mix = tpcc.Mix{
		core.TxnNewOrder:    0.45,
		core.TxnPayment:     0.43,
		core.TxnOrderStatus: 0.04,
		core.TxnDelivery:    0.04,
		core.TxnStockLevel:  0.04,
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, before, _, _ := g.Sizes()
	var txn Txn
	for i := 0; i < 100000; i++ {
		g.Next(&txn)
	}
	_, after, _, _ := g.Sizes()
	if after <= before {
		t.Errorf("pending new-orders should grow under 45/4 mix: %d -> %d", before, after)
	}
}

func TestRemoteStockSelection(t *testing.T) {
	cfg := testConfig(4, 13)
	cfg.RemoteStockProb = 0.5 // exaggerate for test power
	g, _ := New(cfg)
	var local, remote int
	var txn Txn
	for i := 0; i < 20000; i++ {
		g.Next(&txn)
		if txn.Type != core.TxnNewOrder {
			continue
		}
		// Home warehouse is the first access's tuple.
		home := txn.Accesses[0].Tuple
		for _, a := range txn.Accesses {
			if a.Rel == core.Stock && a.Op == core.Select {
				if a.Tuple/tpcc.StockPerWarehouse == home {
					local++
				} else {
					remote++
				}
			}
		}
	}
	frac := float64(remote) / float64(local+remote)
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("remote stock fraction = %.3f, want ~0.5", frac)
	}
}

func TestSingleWarehouseNeverRemote(t *testing.T) {
	cfg := testConfig(1, 17)
	cfg.RemoteStockProb = 1.0
	cfg.RemotePaymentProb = 1.0
	g, _ := New(cfg)
	var txn Txn
	for i := 0; i < 5000; i++ {
		g.Next(&txn)
		for _, a := range txn.Accesses {
			if a.Rel == core.Stock && a.Tuple >= tpcc.StockPerWarehouse {
				t.Fatal("single-warehouse config accessed a remote stock tuple")
			}
		}
	}
}

func TestDeliveryConsumesOldestFIFO(t *testing.T) {
	g, _ := New(testConfig(1, 23))
	// The oldest pending order per district was created during
	// prepopulation; the first delivery of each district must touch
	// order tuples from the prepopulated range in FIFO order.
	var firstDelivery []int64
	var txn Txn
	for len(firstDelivery) == 0 {
		g.Next(&txn)
		if txn.Type == core.TxnDelivery {
			for _, a := range txn.Accesses {
				if a.Rel == core.Order && a.Op == core.Select {
					firstDelivery = append(firstDelivery, a.Tuple)
				}
			}
		}
	}
	orders, _, _, _ := g.Sizes()
	for _, o := range firstDelivery {
		if o >= orders {
			t.Fatalf("delivered order %d out of range", o)
		}
	}
	// Each district's first delivered order is its 2101st prepopulated
	// order (index 2100 within the district block of 3000).
	for i, o := range firstDelivery {
		want := int64(i)*3000 + 2100
		if o != want {
			t.Errorf("district %d first delivery order = %d, want %d", i, o, want)
		}
	}
}

func TestStockLevelTouchesRecentOrderItems(t *testing.T) {
	g, _ := New(testConfig(1, 29))
	txn := collect(t, g, core.TxnStockLevel)
	// Every stock fetch must pair with a preceding order-line fetch and
	// belong to warehouse 0.
	var ols, stocks int
	for _, a := range txn.Accesses {
		if a.Op != core.JoinFetch {
			continue
		}
		switch a.Rel {
		case core.OrderLine:
			ols++
		case core.Stock:
			stocks++
			if a.Tuple >= tpcc.StockPerWarehouse {
				t.Fatal("stock-level fetched stock of a foreign warehouse")
			}
		}
	}
	if ols != stocks || ols != 200 {
		t.Errorf("join fetched %d order-lines and %d stocks, want 200/200", ols, stocks)
	}
}

func TestPendingFIFOCompaction(t *testing.T) {
	var ds districtState
	for i := int64(0); i < 5000; i++ {
		ds.pushPending(pendingOrder{orderRef: orderRef{orderTuple: i}})
	}
	for i := int64(0); i < 4000; i++ {
		p, ok := ds.popPending()
		if !ok || p.orderTuple != i {
			t.Fatalf("pop %d: got %v ok=%v", i, p.orderTuple, ok)
		}
	}
	// Trigger compaction and keep FIFO semantics.
	ds.pushPending(pendingOrder{orderRef: orderRef{orderTuple: 5000}})
	if ds.pendingLen() != 1001 {
		t.Fatalf("pendingLen = %d, want 1001", ds.pendingLen())
	}
	p, _ := ds.popPending()
	if p.orderTuple != 4000 {
		t.Errorf("after compaction pop = %d, want 4000", p.orderTuple)
	}
}

func TestNoPrepopulationOrderStatusSafe(t *testing.T) {
	cfg := testConfig(1, 31)
	cfg.Prepopulate = false
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var txn Txn
	for i := 0; i < 10000; i++ {
		g.Next(&txn) // must not panic on customers without orders
	}
	if g.SkippedDeliveries() == 0 {
		t.Error("without prepopulation early deliveries should skip empty districts")
	}
}
