// Package workload generates the TPC-C logical reference stream of
// Section 2.2 of the paper: a sequence of transactions, each expanded into
// the tuple-level database calls it makes, with the paper's access
// distributions (NURand customer/item ids, uniform warehouse/district),
// transaction mix, and stateful behaviour:
//
//   - the last order placed by every customer (used by Order-Status),
//   - the last 20 orders of every district (used by Stock-Level),
//   - the pending-order FIFO of every district (used by Delivery),
//   - monotonically growing order/new-order/order-line/history relations.
//
// Tuple ordinals are zero-based and linearize the benchmark's composite
// keys: stock (w,i) -> w*100000 + i, customer (w,d,c) -> (w*10+d)*3000 + c,
// district (w,d) -> w*10 + d. The growing relations use global append
// counters. A packing.Mapper later turns ordinals into pages.
package workload

import (
	"fmt"

	"tpccmodel/internal/core"
	"tpccmodel/internal/nurand"
	"tpccmodel/internal/rng"
	"tpccmodel/internal/tpcc"
)

// Config parameterizes a workload stream.
type Config struct {
	// DB is the database scale (warehouses, page size).
	DB tpcc.Config
	// Mix is the transaction mix; defaults to tpcc.DefaultMix.
	Mix tpcc.Mix
	// Seed drives all randomness; the same seed reproduces the stream.
	Seed uint64
	// RemoteStockProb is the probability an ordered item is supplied by
	// a remote warehouse (benchmark: 0.01). Figure 12 sweeps this.
	RemoteStockProb float64
	// RemotePaymentProb is the probability a Payment goes through a
	// non-home warehouse (benchmark: 0.15).
	RemotePaymentProb float64
	// PayByNameProb is the probability a Payment or Order-Status selects
	// the customer by last name (benchmark: 0.60).
	PayByNameProb float64
	// Prepopulate loads the database as the benchmark specifies: 3,000
	// orders per district (one per customer), the most recent 900 of
	// which are pending delivery. Without it the growing relations start
	// empty and Order-Status/Delivery/Stock-Level have nothing to touch
	// until New-Orders accumulate.
	Prepopulate bool
}

// DefaultConfig returns the paper's configuration at the given scale and
// seed.
func DefaultConfig(warehouses int, seed uint64) Config {
	return Config{
		DB:                tpcc.Config{Warehouses: warehouses, PageSize: 4096},
		Mix:               tpcc.DefaultMix(),
		Seed:              seed,
		RemoteStockProb:   tpcc.RemoteStockProb,
		RemotePaymentProb: tpcc.RemotePaymentProb,
		PayByNameProb:     tpcc.PayByNameProb,
		Prepopulate:       true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.DB.Validate(); err != nil {
		return err
	}
	if err := c.Mix.Validate(); err != nil {
		return err
	}
	// A slice, not a map: iteration order decides which violation is
	// reported first, and error output must be deterministic.
	for _, pr := range []struct {
		name string
		p    float64
	}{
		{"RemoteStockProb", c.RemoteStockProb},
		{"RemotePaymentProb", c.RemotePaymentProb},
		{"PayByNameProb", c.PayByNameProb},
	} {
		if pr.p < 0 || pr.p > 1 {
			return fmt.Errorf("workload: %s = %v out of [0,1]", pr.name, pr.p)
		}
	}
	return nil
}

// Txn is one generated transaction: its type and the tuple accesses it
// makes, in call order. The Accesses slice is reused across calls to
// Generator.Next; copy it to retain.
type Txn struct {
	Type     core.TxnType
	Accesses []core.Access
	// DeliverySkipped counts districts whose pending queue was empty
	// when a Delivery transaction visited them (only set for Delivery).
	DeliverySkipped int
}

// orderRef locates one order's tuples.
type orderRef struct {
	orderTuple int64
	olStart    int64
	olCount    uint8
}

// pendingOrder is an order awaiting Delivery.
type pendingOrder struct {
	orderRef
	noTuple int64 // tuple ordinal in the New-Order relation
	custTup int64 // customer tuple ordinal
}

// recentOrder is an entry in a district's last-20 ring, carrying the item
// ordinals Stock-Level needs for its join against stock.
type recentOrder struct {
	orderRef
	items [tpcc.ItemsPerOrder]int32
}

// districtState is the per-district bookkeeping.
type districtState struct {
	// pending is a FIFO of undelivered orders: pending[head:] are live.
	pending []pendingOrder
	head    int
	// recent is a ring of the district's last 20 orders.
	recent [tpcc.StockLevelOrders]recentOrder
	nRec   int // number of valid entries (saturates at 20)
	rPos   int // next write position
}

func (d *districtState) pushPending(p pendingOrder) {
	// Compact the FIFO when the dead prefix dominates.
	if d.head > 1024 && d.head*2 > len(d.pending) {
		n := copy(d.pending, d.pending[d.head:])
		d.pending = d.pending[:n]
		d.head = 0
	}
	d.pending = append(d.pending, p)
}

func (d *districtState) popPending() (pendingOrder, bool) {
	if d.head >= len(d.pending) {
		return pendingOrder{}, false
	}
	p := d.pending[d.head]
	d.head++
	return p, true
}

func (d *districtState) pendingLen() int { return len(d.pending) - d.head }

func (d *districtState) pushRecent(r recentOrder) {
	d.recent[d.rPos] = r
	d.rPos = (d.rPos + 1) % tpcc.StockLevelOrders
	if d.nRec < tpcc.StockLevelOrders {
		d.nRec++
	}
}

// Generator produces the reference stream.
type Generator struct {
	cfg Config
	r   *rng.RNG

	custGen *nurand.Gen // NU(1023,1,3000)
	itemGen *nurand.Gen // NU(8191,1,100000)
	nameGen [3]*nurand.Gen

	// Append counters (also the current cardinality of each growing
	// relation; New-Order tracks live count separately).
	orderCtr, noCtr, olCtr, histCtr int64
	noLive                          int64

	districts []districtState
	// lastOrder[customer tuple ordinal] is the customer's most recent
	// order, or orderTuple == -1 if none.
	lastOrder []orderRef

	txnCounts [core.NumTxnTypes]int64
	skipped   int64
}

// New builds a generator; it prepopulates the database state if configured.
func New(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	g := &Generator{
		cfg:     cfg,
		r:       r,
		custGen: nurand.NewGen(nurand.CustomerID, r),
		itemGen: nurand.NewGen(nurand.ItemID, r),
	}
	thirds := nurand.NameThirds()
	for i, p := range thirds {
		g.nameGen[i] = nurand.NewGen(p, r)
	}
	nDist := cfg.DB.Warehouses * tpcc.DistrictsPerWarehouse
	g.districts = make([]districtState, nDist)
	g.lastOrder = make([]orderRef, cfg.DB.Cardinality(core.Customer))
	for i := range g.lastOrder {
		g.lastOrder[i].orderTuple = -1
	}
	if cfg.Prepopulate {
		g.prepopulate()
	}
	return g, nil
}

// prepopulate loads 3,000 orders per district — one per customer in a
// random permutation, as the benchmark's initial population specifies —
// with the most recent 900 pending delivery. Item ids in the initial
// orders are uniform (the load is not NURand-skewed).
func (g *Generator) prepopulate() {
	perm := make([]int64, tpcc.CustomersPerDistrict)
	for dist := range g.districts {
		ds := &g.districts[dist]
		g.r.Perm(perm)
		custBase := int64(dist) * tpcc.CustomersPerDistrict
		for o := 0; o < tpcc.CustomersPerDistrict; o++ {
			ref := orderRef{
				orderTuple: g.orderCtr,
				olStart:    g.olCtr,
				olCount:    tpcc.ItemsPerOrder,
			}
			g.orderCtr++
			g.olCtr += tpcc.ItemsPerOrder
			custTup := custBase + perm[o]
			g.lastOrder[custTup] = ref
			var rec recentOrder
			rec.orderRef = ref
			for i := range rec.items {
				rec.items[i] = int32(g.r.Int63n(tpcc.ItemCount))
			}
			ds.pushRecent(rec)
			if o >= tpcc.CustomersPerDistrict-900 {
				ds.pushPending(pendingOrder{
					orderRef: ref,
					noTuple:  g.noCtr,
					custTup:  custTup,
				})
				g.noCtr++
				g.noLive++
			}
		}
	}
}

// Sizes reports the current cardinalities of the growing relations:
// total orders, live new-order entries, order-lines, and history tuples.
func (g *Generator) Sizes() (orders, newOrders, orderLines, history int64) {
	return g.orderCtr, g.noLive, g.olCtr, g.histCtr
}

// TxnCounts returns how many transactions of each type have been generated.
func (g *Generator) TxnCounts() [core.NumTxnTypes]int64 { return g.txnCounts }

// SkippedDeliveries returns the total number of district deliveries skipped
// because no order was pending.
func (g *Generator) SkippedDeliveries() int64 { return g.skipped }

func (g *Generator) pickType() core.TxnType {
	u := g.r.Float64()
	var cum float64
	for t := core.TxnType(0); t < core.NumTxnTypes; t++ {
		cum += g.cfg.Mix.Fraction(t)
		if u < cum {
			return t
		}
	}
	return core.TxnStockLevel
}

// Next generates one transaction into t, reusing t.Accesses.
func (g *Generator) Next(t *Txn) {
	t.Accesses = t.Accesses[:0]
	t.DeliverySkipped = 0
	t.Type = g.pickType()
	g.txnCounts[t.Type]++
	switch t.Type {
	case core.TxnNewOrder:
		g.newOrder(t)
	case core.TxnPayment:
		g.payment(t)
	case core.TxnOrderStatus:
		g.orderStatus(t)
	case core.TxnDelivery:
		g.delivery(t)
	case core.TxnStockLevel:
		g.stockLevel(t)
	}
}

func (t *Txn) add(rel core.Relation, tuple int64, op core.Op) {
	t.Accesses = append(t.Accesses, core.Access{Rel: rel, Tuple: tuple, Op: op})
}

// pickWarehouse returns a uniform warehouse ordinal.
func (g *Generator) pickWarehouse() int64 { return g.r.Int63n(int64(g.cfg.DB.Warehouses)) }

// pickRemoteWarehouse returns a uniform warehouse other than home (or home
// when only one warehouse exists).
func (g *Generator) pickRemoteWarehouse(home int64) int64 {
	w := int64(g.cfg.DB.Warehouses)
	if w == 1 {
		return home
	}
	v := g.r.Int63n(w - 1)
	if v >= home {
		v++
	}
	return v
}

// customerByID returns the customer tuple ordinal for an NU(1023,1,3000)
// draw in the given district.
func (g *Generator) customerByID(dist int64) int64 {
	return dist*tpcc.CustomersPerDistrict + g.custGen.Next() - 1
}

// customerByName models the non-unique select: one of the three
// (lbound,ubound) thirds is chosen with equal probability and three
// qualifying customer tuples are drawn independently from that third's
// NU(255,·,·) distribution (the three customers sharing a last name are
// spread through the district, as the benchmark's population rule implies).
// It returns the three tuple ordinals; the "middle" customer the
// transaction proceeds with is the second.
func (g *Generator) customerByName(dist int64) [3]int64 {
	third := g.r.Int63n(3)
	gen := g.nameGen[third]
	var out [3]int64
	for i := range out {
		out[i] = dist*tpcc.CustomersPerDistrict + gen.Next() - 1
	}
	return out
}

// newOrder implements the New-Order access pattern of Section 2.2.
func (g *Generator) newOrder(t *Txn) {
	wh := g.pickWarehouse()
	d := g.r.Int63n(tpcc.DistrictsPerWarehouse)
	dist := wh*tpcc.DistrictsPerWarehouse + d
	cust := g.customerByID(dist)

	t.add(core.Warehouse, wh, core.Select)
	t.add(core.District, dist, core.Select)
	t.add(core.District, dist, core.Update)
	t.add(core.Customer, cust, core.Select)

	ref := orderRef{orderTuple: g.orderCtr, olStart: g.olCtr, olCount: tpcc.ItemsPerOrder}
	t.add(core.Order, g.orderCtr, core.Insert)
	g.orderCtr++
	noTuple := g.noCtr
	t.add(core.NewOrder, noTuple, core.Insert)
	g.noCtr++
	g.noLive++

	var rec recentOrder
	rec.orderRef = ref
	for i := 0; i < tpcc.ItemsPerOrder; i++ {
		item := g.itemGen.Next() - 1
		rec.items[i] = int32(item)
		supply := wh
		if g.r.Bernoulli(g.cfg.RemoteStockProb) {
			supply = g.pickRemoteWarehouse(wh)
		}
		t.add(core.Item, item, core.Select)
		stockTup := supply*tpcc.StockPerWarehouse + item
		t.add(core.Stock, stockTup, core.Select)
		t.add(core.Stock, stockTup, core.Update)
		t.add(core.OrderLine, g.olCtr, core.Insert)
		g.olCtr++
	}

	g.lastOrder[cust] = ref
	ds := &g.districts[dist]
	ds.pushRecent(rec)
	ds.pushPending(pendingOrder{orderRef: ref, noTuple: noTuple, custTup: cust})
}

// payment implements the Payment access pattern.
func (g *Generator) payment(t *Txn) {
	wh := g.pickWarehouse()
	d := g.r.Int63n(tpcc.DistrictsPerWarehouse)

	t.add(core.Warehouse, wh, core.Select)
	t.add(core.District, wh*tpcc.DistrictsPerWarehouse+d, core.Select)

	custWh := wh
	if g.r.Bernoulli(g.cfg.RemotePaymentProb) {
		custWh = g.pickRemoteWarehouse(wh)
	}
	custDist := custWh*tpcc.DistrictsPerWarehouse + g.r.Int63n(tpcc.DistrictsPerWarehouse)

	var cust int64
	if g.r.Bernoulli(g.cfg.PayByNameProb) {
		three := g.customerByName(custDist)
		for _, c := range three {
			t.add(core.Customer, c, core.NonUniqueSelect)
		}
		cust = three[1]
	} else {
		cust = g.customerByID(custDist)
		t.add(core.Customer, cust, core.Select)
	}

	t.add(core.Warehouse, wh, core.Update)
	t.add(core.District, wh*tpcc.DistrictsPerWarehouse+d, core.Update)
	t.add(core.Customer, cust, core.Update)
	t.add(core.History, g.histCtr, core.Insert)
	g.histCtr++
}

// orderStatus implements the Order-Status access pattern.
func (g *Generator) orderStatus(t *Txn) {
	wh := g.pickWarehouse()
	dist := wh*tpcc.DistrictsPerWarehouse + g.r.Int63n(tpcc.DistrictsPerWarehouse)

	var cust int64
	if g.r.Bernoulli(g.cfg.PayByNameProb) {
		three := g.customerByName(dist)
		for _, c := range three {
			t.add(core.Customer, c, core.NonUniqueSelect)
		}
		cust = three[1]
	} else {
		cust = g.customerByID(dist)
		t.add(core.Customer, cust, core.Select)
	}

	ref := g.lastOrder[cust]
	if ref.orderTuple < 0 {
		return // customer has never ordered (only without prepopulation)
	}
	// Select(Max(order-id)): one indexed select on Order.
	t.add(core.Order, ref.orderTuple, core.Select)
	for i := int64(0); i < int64(ref.olCount); i++ {
		t.add(core.OrderLine, ref.olStart+i, core.Select)
	}
}

// delivery implements the Delivery access pattern: the oldest pending order
// of each of the warehouse's ten districts.
func (g *Generator) delivery(t *Txn) {
	wh := g.pickWarehouse()
	for d := int64(0); d < tpcc.DistrictsPerWarehouse; d++ {
		dist := wh*tpcc.DistrictsPerWarehouse + d
		ds := &g.districts[dist]
		p, ok := ds.popPending()
		if !ok {
			t.DeliverySkipped++
			g.skipped++
			continue
		}
		g.noLive--
		// Select(Min(order-id)) from New-Order via multi-keyed index,
		// then delete it.
		t.add(core.NewOrder, p.noTuple, core.Select)
		t.add(core.NewOrder, p.noTuple, core.Delete)
		t.add(core.Order, p.orderTuple, core.Select)
		t.add(core.Order, p.orderTuple, core.Update)
		for i := int64(0); i < int64(p.olCount); i++ {
			t.add(core.OrderLine, p.olStart+i, core.Select)
			t.add(core.OrderLine, p.olStart+i, core.Update)
		}
		t.add(core.Customer, p.custTup, core.Select)
		t.add(core.Customer, p.custTup, core.Update)
	}
}

// stockLevel implements the Stock-Level access pattern: the join touches
// each order line of the district's last 20 orders and the corresponding
// stock tuple at the district's home warehouse.
func (g *Generator) stockLevel(t *Txn) {
	wh := g.pickWarehouse()
	d := g.r.Int63n(tpcc.DistrictsPerWarehouse)
	dist := wh*tpcc.DistrictsPerWarehouse + d
	t.add(core.District, dist, core.Select)

	ds := &g.districts[dist]
	for k := 0; k < ds.nRec; k++ {
		rec := &ds.recent[k]
		for i := int64(0); i < int64(rec.olCount); i++ {
			t.add(core.OrderLine, rec.olStart+i, core.JoinFetch)
			t.add(core.Stock, wh*tpcc.StockPerWarehouse+int64(rec.items[i]), core.JoinFetch)
		}
	}
}
