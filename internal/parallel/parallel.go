// Package parallel provides the worker-pool sweep runner used by the
// experiment pipeline to fan out independent grid cells (packing x policy x
// buffer size, model sweeps, replacement-policy ablations) across CPUs.
//
// Determinism contract: the pool only controls *scheduling*. Every task must
// be self-contained — it derives any randomness it needs from the root seed
// via rng.Substream (never sharing a generator across goroutines) — and
// results are collected by task index, so emitted output is byte-identical
// to a serial run regardless of worker count or completion order.
package parallel

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Workers resolves a worker-count setting: values <= 0 mean "one worker per
// CPU". The result is always at least 1.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if c := runtime.NumCPU(); c > 0 {
		return c
	}
	return 1
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines and
// returns the error of the lowest-indexed failing task (so the reported
// error does not depend on scheduling). All tasks run even when one fails;
// tasks are independent grid cells and a partial sweep has no value.
func ForEach(workers, n int, fn func(i int) error) error {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return nil
	}
	if workers <= 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn over [0, n) on up to workers goroutines and returns the
// results ordered by task index, independent of completion order. On error
// it returns the error of the lowest-indexed failing task.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Progress reports completion counts and an ETA for a sweep. It is safe for
// concurrent use by pool workers; output is rate-limited so tight task loops
// do not flood the writer. A nil *Progress is valid and reports nothing.
type Progress struct {
	label string
	total int
	w     io.Writer
	start time.Time

	mu      sync.Mutex
	done    int
	lastOut time.Time
}

// NewProgress returns a reporter for total tasks writing to w (nil w
// disables output).
func NewProgress(label string, total int, w io.Writer) *Progress {
	return &Progress{label: label, total: total, w: w, start: time.Now()}
}

// minReportInterval rate-limits progress lines.
const minReportInterval = 500 * time.Millisecond

// Done records one completed task, printing progress and ETA at most every
// half second (and always for the final task).
func (p *Progress) Done() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	now := time.Now()
	if p.w == nil || (p.done < p.total && now.Sub(p.lastOut) < minReportInterval) {
		return
	}
	p.lastOut = now
	elapsed := now.Sub(p.start)
	line := fmt.Sprintf("%s: %d/%d done in %v", p.label, p.done, p.total,
		elapsed.Round(time.Millisecond))
	if p.done < p.total && p.done > 0 {
		eta := time.Duration(float64(elapsed) / float64(p.done) * float64(p.total-p.done))
		line += fmt.Sprintf(", ETA %v", eta.Round(time.Second))
	}
	fmt.Fprintln(p.w, line)
}
