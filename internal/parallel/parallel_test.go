package parallel

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	for _, n := range []int{0, -1} {
		if got := Workers(n); got < 1 {
			t.Errorf("Workers(%d) = %d, want >= 1", n, got)
		}
	}
}

func TestForEachRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 57
		var ran [n]atomic.Int64
		err := ForEach(workers, n, func(i int) error {
			ran[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachReportsLowestIndexedError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 20, func(i int) error {
			switch i {
			case 3:
				return errLow
			case 17:
				return errHigh
			}
			return nil
		})
		if err != errLow {
			t.Errorf("workers=%d: got %v, want the lowest-indexed error", workers, err)
		}
	}
}

func TestForEachRunsAllTasksDespiteError(t *testing.T) {
	var ran atomic.Int64
	err := ForEach(4, 30, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got != 30 {
		t.Errorf("ran %d/30 tasks after error", got)
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestMapOrderIndependentOfWorkers is the determinism contract at the pool
// level: identical inputs must yield identical, index-ordered outputs for
// every worker count.
func TestMapOrderIndependentOfWorkers(t *testing.T) {
	want := make([]string, 64)
	for i := range want {
		want[i] = fmt.Sprintf("task-%02d", i)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got, err := Map(workers, len(want), func(i int) (string, error) {
			return fmt.Sprintf("task-%02d", i), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: results out of index order", workers)
		}
	}
}

func TestMapError(t *testing.T) {
	out, err := Map(4, 10, func(i int) (int, error) {
		if i == 5 {
			return 0, errors.New("bad cell")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("got (%v, %v), want nil results and an error", out, err)
	}
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.Done() // must not panic
}

func TestProgressReportsFinalCount(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress("sweep", 3, &buf)
	for i := 0; i < 3; i++ {
		p.Done()
	}
	out := buf.String()
	if !strings.Contains(out, "sweep: 3/3 done") {
		t.Errorf("final progress line missing: %q", out)
	}
}

func TestProgressNilWriter(t *testing.T) {
	p := NewProgress("quiet", 2, nil)
	p.Done()
	p.Done() // must not panic
}
