package queuesim

import (
	"testing"

	"tpccmodel/internal/core"
	"tpccmodel/internal/tpcc"
)

// TestEdgeCases drives the simulator through the degenerate operating
// points a closed-form check never exercises: transaction types with zero
// arrival probability, a single shared disk arm, and offered load beyond
// the service capacity (the simulator has no saturation guard — it must
// still terminate and report a queue that has blown up).
func TestEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		cfg   func() Config
		check func(t *testing.T, res Result)
	}{
		{
			// A mix that names only two types: the absent types must
			// never complete, so their per-type response stays exactly
			// zero while the present types carry all the throughput.
			name: "zero-arrival-mix",
			cfg: func() Config {
				cfg := singleClassConfig(0.005, 0, 40, 1)
				cfg.Sys.Mix = tpcc.Mix{core.TxnNewOrder: 0.6, core.TxnPayment: 0.4}
				return cfg
			},
			check: func(t *testing.T, res Result) {
				for _, typ := range []core.TxnType{
					core.TxnOrderStatus, core.TxnDelivery, core.TxnStockLevel,
				} {
					if r := res.PerTxnResponseMs[typ]; r != 0 {
						t.Errorf("%s has zero arrival fraction but response %.3fms", typ, r)
					}
				}
				for _, typ := range []core.TxnType{core.TxnNewOrder, core.TxnPayment} {
					if res.PerTxnResponseMs[typ] <= 0 {
						t.Errorf("%s carries the mix but has no measured response", typ)
					}
				}
				if res.Completed == 0 {
					t.Error("nothing completed")
				}
			},
		},
		{
			// One disk arm serving two I/Os per transaction: utilization
			// must land at lambda * ios * serviceTime on the single
			// server, not be split across phantom arms.
			name: "single-disk-arm",
			cfg: func() Config {
				return singleClassConfig(1e-7, 2, 14, 1)
			},
			check: func(t *testing.T, res Result) {
				rho := 14 * 2 * 0.025 // 0.7 on the one arm
				if res.DiskUtil < rho-0.05 || res.DiskUtil > rho+0.05 {
					t.Errorf("single-arm disk util = %.3f, want ~%.2f", res.DiskUtil, rho)
				}
				if res.DiskUtil > 1 {
					t.Errorf("utilization above 1: %.3f", res.DiskUtil)
				}
			},
		},
		{
			// Offered load 1.5x the CPU capacity: Run has no saturation
			// guard, so it must still terminate, with the server pinned
			// busy and throughput capped at the service rate. Kept small:
			// in overload the PS station's backlog (and with it the cost
			// of its completion scans) grows with every arrival.
			name: "cpu-saturation",
			cfg: func() Config {
				cfg := singleClassConfig(0.010, 0, 150, 1) // capacity 100/s
				cfg.Transactions = 400
				cfg.WarmupTransactions = 100
				return cfg
			},
			check: func(t *testing.T, res Result) {
				if res.CPUUtil < 0.95 {
					t.Errorf("saturated CPU util = %.3f, want ~1", res.CPUUtil)
				}
				if res.ThroughputPerSec > 130 {
					t.Errorf("throughput %.1f/s exceeds the 100/s service capacity", res.ThroughputPerSec)
				}
				// The queue grows for the whole run; mean response must
				// dwarf the 10ms service demand.
				if res.MeanResponseMs < 100 {
					t.Errorf("saturated response = %.1fms, expected a blown-up queue", res.MeanResponseMs)
				}
			},
		},
		{
			// Same I/O load spread over many arms: per-arm utilization
			// drops proportionally and response approaches bare service.
			name: "many-arms-relieve-disk",
			cfg: func() Config {
				return singleClassConfig(1e-7, 2, 14, 8)
			},
			check: func(t *testing.T, res Result) {
				rho := 14 * 2 * 0.025 / 8
				if res.DiskUtil < rho-0.03 || res.DiskUtil > rho+0.03 {
					t.Errorf("8-arm disk util = %.3f, want ~%.3f", res.DiskUtil, rho)
				}
				// Two sequential 25ms I/Os with almost no queueing.
				if res.MeanResponseMs < 50 || res.MeanResponseMs > 60 {
					t.Errorf("8-arm response = %.1fms, want ~2*25ms with little queueing",
						res.MeanResponseMs)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.cfg())
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, res)
		})
	}
}

// TestSaturationVsModerateLoad pins the qualitative contract the response
// experiments rely on: pushing lambda past capacity must raise the mean
// response by orders of magnitude relative to a moderately loaded run of
// the same service demand.
func TestSaturationVsModerateLoad(t *testing.T) {
	moderate := singleClassConfig(0.010, 0, 50, 1) // rho = 0.5
	saturated := singleClassConfig(0.010, 0, 150, 1)
	saturated.Transactions = 400
	saturated.WarmupTransactions = 100
	mres, err := Run(moderate)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := Run(saturated)
	if err != nil {
		t.Fatal(err)
	}
	if sres.MeanResponseMs < 5*mres.MeanResponseMs {
		t.Errorf("saturated response %.1fms not clearly above moderate %.1fms",
			sres.MeanResponseMs, mres.MeanResponseMs)
	}
}
