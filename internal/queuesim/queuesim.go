// Package queuesim is a discrete-event simulation of the paper's
// single-node resource model: Poisson arrivals of the five-type TPC-C mix
// served by one processor-sharing CPU and a bank of FCFS disk arms. It
// exists to validate the analytic throughput and response-time model
// (package model) — the classic model-vs-simulation cross-check the paper
// performs only for the buffer pool.
//
// Station disciplines are chosen so the analytic formulas are exact for
// the simulated system: a processor-sharing M/G/1 queue has per-class mean
// response demand/(1-rho) regardless of the service distribution, and the
// disks see class-independent exponential service, so each is an M/M/1
// FCFS queue. Agreement between the two is therefore a correctness check
// on both implementations, not a lucky approximation.
package queuesim

import (
	"container/heap"
	"fmt"
	"math"

	"tpccmodel/internal/core"
	"tpccmodel/internal/model"
	"tpccmodel/internal/rng"
)

// Config parameterizes a run.
type Config struct {
	// Sys supplies the CPU speed and service constants.
	Sys model.SystemParams
	// Demands are the per-type CPU path lengths and read-I/O counts.
	Demands model.Demands
	// Lambda is the Poisson arrival rate (transactions/second, all
	// types; the type of each arrival is drawn from Sys.Mix).
	Lambda float64
	// DiskArms is the number of data-disk FCFS servers.
	DiskArms int
	// Transactions to simulate after warmup.
	Transactions int
	// WarmupTransactions complete before measurement starts.
	WarmupTransactions int
	// Seed drives all randomness.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Sys.Validate(); err != nil {
		return err
	}
	if c.Lambda <= 0 {
		return fmt.Errorf("queuesim: lambda must be positive")
	}
	if c.DiskArms < 1 {
		return fmt.Errorf("queuesim: need at least one disk arm")
	}
	if c.Transactions <= 0 {
		return fmt.Errorf("queuesim: need a positive transaction count")
	}
	return nil
}

// Result reports measured quantities.
type Result struct {
	// Completed transactions measured (excludes warmup).
	Completed int64
	// ThroughputPerSec is completions per simulated second.
	ThroughputPerSec float64
	// MeanResponseMs per type and overall (mix-weighted by completion).
	PerTxnResponseMs [core.NumTxnTypes]float64
	MeanResponseMs   float64
	// CPUUtil and DiskUtil are time-averaged busy fractions.
	CPUUtil  float64
	DiskUtil float64
}

// job is one in-flight transaction.
type job struct {
	typ     core.TxnType
	arrival float64
	// remaining CPU work in seconds (under processor sharing).
	cpuRemaining float64
	// ios left to perform after the CPU stage.
	iosLeft  int
	measured bool
}

// event kinds.
const (
	evArrival = iota
	evDiskDone
	evCPUCheck // virtual-time checkpoint for the PS station
)

type event struct {
	at   float64
	kind int
	j    *job
	arm  int
}

type eventHeap []event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Run executes the simulation.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	r := rng.New(cfg.Seed)
	exp := func(mean float64) float64 {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return -mean * math.Log(u)
	}
	pickType := func() core.TxnType {
		u := r.Float64()
		var cum float64
		for t := core.TxnType(0); t < core.NumTxnTypes; t++ {
			cum += cfg.Sys.Mix.Fraction(t)
			if u < cum {
				return t
			}
		}
		return core.TxnStockLevel
	}

	// Precompute per-type means.
	var cpuMean [core.NumTxnTypes]float64 // seconds
	var ioMean [core.NumTxnTypes]float64  // expected I/O count
	for t := range cfg.Demands {
		cpuMean[t] = model.CPUInstructions(cfg.Sys.CPU, cfg.Demands[t], model.RemoteVisits{}) /
			(cfg.Sys.MIPS * 1e6)
		ioMean[t] = cfg.Demands[t].ReadIOs
	}
	diskService := cfg.Sys.CPU.DiskMs / 1000

	// Processor-sharing CPU state: the set of jobs in service; work
	// drains at rate 1/len(set) each. lastAdvance is the wall time of
	// the last drain.
	cpuJobs := make(map[*job]struct{})
	lastAdvance := 0.0
	var cpuBusy float64

	// FCFS disk arms.
	diskQ := make([][]*job, cfg.DiskArms)
	diskBusyUntil := make([]float64, cfg.DiskArms)
	var diskBusy float64

	var events eventHeap
	push := func(e event) { heap.Push(&events, e) }

	// advanceCPU drains processor-sharing work up to time now.
	advanceCPU := func(now float64) {
		dt := now - lastAdvance
		lastAdvance = now
		n := len(cpuJobs)
		if n == 0 || dt <= 0 {
			return
		}
		cpuBusy += dt
		per := dt / float64(n)
		for j := range cpuJobs {
			j.cpuRemaining -= per
		}
	}
	// nextCPUDeparture returns the earliest PS completion time from now.
	nextCPUDeparture := func(now float64) (float64, bool) {
		n := len(cpuJobs)
		if n == 0 {
			return 0, false
		}
		minRem := math.Inf(1)
		for j := range cpuJobs {
			if j.cpuRemaining < minRem {
				minRem = j.cpuRemaining
			}
		}
		if minRem < 0 {
			minRem = 0
		}
		return now + minRem*float64(n), true
	}

	var res Result
	var measuredStart float64
	var lastCompletion float64
	var totalResp [core.NumTxnTypes]float64
	var counts [core.NumTxnTypes]int64
	target := cfg.Transactions + cfg.WarmupTransactions
	started := 0

	startIO := func(now float64, j *job) {
		arm := int(r.Int63n(int64(cfg.DiskArms)))
		diskQ[arm] = append(diskQ[arm], j)
		if len(diskQ[arm]) == 1 {
			s := exp(diskService)
			diskBusy += s
			diskBusyUntil[arm] = now + s
			push(event{at: now + s, kind: evDiskDone, arm: arm, j: j})
		}
	}
	var complete func(now float64, j *job)
	complete = func(now float64, j *job) {
		if j.measured {
			res.Completed++
			totalResp[j.typ] += now - j.arrival
			counts[j.typ]++
			lastCompletion = now
		}
	}
	finishCPUStage := func(now float64, j *job) {
		delete(cpuJobs, j)
		if j.iosLeft > 0 {
			j.iosLeft--
			startIO(now, j)
		} else {
			complete(now, j)
		}
	}
	scheduleCPUCheck := func(now float64) {
		if at, ok := nextCPUDeparture(now); ok {
			// Guarantee forward progress: the check must land at a
			// strictly later float timestamp than `now`.
			if min := now + now*1e-13 + 1e-12; at < min {
				at = min
			}
			push(event{at: at, kind: evCPUCheck})
		}
	}
	enterCPU := func(now float64, j *job) {
		advanceCPU(now)
		j.cpuRemaining = exp(cpuMean[j.typ])
		cpuJobs[j] = struct{}{}
		scheduleCPUCheck(now)
	}

	push(event{at: exp(1 / cfg.Lambda), kind: evArrival})
	for events.Len() > 0 {
		e := heap.Pop(&events).(event)
		now := e.at
		switch e.kind {
		case evArrival:
			if started < target {
				j := &job{typ: pickType(), arrival: now}
				j.measured = started >= cfg.WarmupTransactions
				if j.measured && measuredStart == 0 {
					measuredStart = now
				}
				// Draw the integer I/O count with the right mean.
				base := math.Floor(ioMean[j.typ])
				j.iosLeft = int(base)
				if r.Float64() < ioMean[j.typ]-base {
					j.iosLeft++
				}
				started++
				enterCPU(now, j)
				push(event{at: now + exp(1/cfg.Lambda), kind: evArrival})
			}
		case evCPUCheck:
			advanceCPU(now)
			// Complete every job whose PS work has drained. The
			// threshold is relative to the clock: once a job's
			// remaining share falls below the float resolution of
			// `now`, time can no longer advance past it.
			eps := 1e-12 + now*1e-13
			for j := range cpuJobs {
				if j.cpuRemaining*float64(len(cpuJobs)) <= eps {
					finishCPUStage(now, j)
				}
			}
			scheduleCPUCheck(now)
		case evDiskDone:
			// Ignore stale completions (queue head changed).
			q := diskQ[e.arm]
			if len(q) == 0 || q[0] != e.j || diskBusyUntil[e.arm] > now+1e-12 {
				break
			}
			diskQ[e.arm] = q[1:]
			j := e.j
			if len(diskQ[e.arm]) > 0 {
				next := diskQ[e.arm][0]
				s := exp(diskService)
				diskBusy += s
				diskBusyUntil[e.arm] = now + s
				push(event{at: now + s, kind: evDiskDone, arm: e.arm, j: next})
			}
			if j.iosLeft > 0 {
				j.iosLeft--
				startIO(now, j)
			} else {
				complete(now, j)
			}
		}
		if res.Completed >= int64(cfg.Transactions) {
			break
		}
	}

	span := lastCompletion - measuredStart
	if span <= 0 || res.Completed == 0 {
		return res, fmt.Errorf("queuesim: system did not reach steady state (overloaded?)")
	}
	res.ThroughputPerSec = float64(res.Completed) / span
	var weighted float64
	for t := range counts {
		if counts[t] > 0 {
			res.PerTxnResponseMs[t] = totalResp[t] / float64(counts[t]) * 1000
		}
		weighted += totalResp[t] * 1000
	}
	res.MeanResponseMs = weighted / float64(res.Completed)
	res.CPUUtil = cpuBusy / lastCompletion
	res.DiskUtil = diskBusy / lastCompletion / float64(cfg.DiskArms)
	return res, nil
}
