package queuesim

import (
	"math"
	"testing"

	"tpccmodel/internal/core"
	"tpccmodel/internal/model"
	"tpccmodel/internal/tpcc"
)

// singleClassConfig builds a degenerate mix (all New-Order) with the given
// CPU seconds and I/O count per transaction, by reverse-engineering the
// demand into instruction counts.
func singleClassConfig(cpuSeconds, ios float64, lambda float64, arms int) Config {
	sys := model.DefaultSystemParams()
	sys.Mix = tpcc.Mix{core.TxnNewOrder: 1}
	var d model.Demands
	// Zero out everything except an application path of the right size.
	cpu := model.CPUParams{Application: 1, DiskMs: sys.CPU.DiskMs}
	sys.CPU = cpu
	instr := cpuSeconds * sys.MIPS * 1e6
	for t := range d {
		d[t] = model.Demand{
			Calls:   model.CallCounts{SQLCalls: instr - 1},
			ReadIOs: ios,
		}
	}
	// CPUInstructions adds (1+SQLCalls)*Application + (ReadIOs+1)*InitIO
	// + commit + initTxn; with only Application nonzero the path is
	// exactly instr.
	return Config{
		Sys: sys, Demands: d, Lambda: lambda, DiskArms: arms,
		Transactions: 30000, WarmupTransactions: 3000, Seed: 11,
	}
}

func TestMM1PSMatchesTheory(t *testing.T) {
	// Pure CPU (no I/O): M/M/1-PS with service S and utilization rho has
	// mean response S/(1-rho).
	const s = 0.010 // 10ms
	const lambda = 50.0
	rho := lambda * s
	cfg := singleClassConfig(s, 0, lambda, 1)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := s / (1 - rho) * 1000
	if math.Abs(res.MeanResponseMs-want)/want > 0.08 {
		t.Errorf("PS response = %.2fms, theory %.2fms", res.MeanResponseMs, want)
	}
	if math.Abs(res.CPUUtil-rho)/rho > 0.05 {
		t.Errorf("CPU util = %.3f, theory %.3f", res.CPUUtil, rho)
	}
	if math.Abs(res.ThroughputPerSec-lambda)/lambda > 0.05 {
		t.Errorf("throughput = %.1f, arrivals %.1f", res.ThroughputPerSec, lambda)
	}
}

func TestMM1FCFSDiskMatchesTheory(t *testing.T) {
	// CPU nearly free, one I/O per txn on one arm: M/M/1 FCFS with
	// service 25ms; response = S/(1-rho).
	const lambda = 16.0
	s := 0.025
	rho := lambda * s
	cfg := singleClassConfig(1e-7, 1, lambda, 1)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := s / (1 - rho) * 1000
	if math.Abs(res.MeanResponseMs-want)/want > 0.08 {
		t.Errorf("disk response = %.2fms, theory %.2fms", res.MeanResponseMs, want)
	}
	if math.Abs(res.DiskUtil-rho)/rho > 0.06 {
		t.Errorf("disk util = %.3f, theory %.3f", res.DiskUtil, rho)
	}
}

// TestValidatesAnalyticModel is the headline cross-check: the discrete-
// event simulation of the full TPC-C mix must agree with the analytic
// response-time model (PS and M/M/1 formulas) per transaction type.
func TestValidatesAnalyticModel(t *testing.T) {
	sys := model.DefaultSystemParams()
	d := model.StaticDemands(model.AnalyticReadIOs(model.AnalyticMissRates{
		MC: 0.5, MI: 0.01, MS: 0.3, MO: 0.2, ML: 0.1, MNO: 0.01,
	}))
	tp := model.MaxThroughput(sys, d, nil)
	lambda := tp.TotalPerSec * 0.75 // 60% CPU utilization
	arms := 16

	analytic, err := model.ResponseTime(sys, d, lambda, arms)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Sys: sys, Demands: d, Lambda: lambda, DiskArms: arms,
		Transactions: 60000, WarmupTransactions: 6000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CPUUtil-analytic.CPUUtil)/analytic.CPUUtil > 0.05 {
		t.Errorf("CPU util: sim %.3f vs analytic %.3f", res.CPUUtil, analytic.CPUUtil)
	}
	for tt := core.TxnType(0); tt < core.NumTxnTypes; tt++ {
		simMs := res.PerTxnResponseMs[tt]
		anaMs := analytic.PerTxnMs[tt]
		if simMs == 0 {
			continue
		}
		if math.Abs(simMs-anaMs)/anaMs > 0.15 {
			t.Errorf("%s: sim %.1fms vs analytic %.1fms", tt, simMs, anaMs)
		}
	}
	if math.Abs(res.MeanResponseMs-analytic.MeanMs)/analytic.MeanMs > 0.12 {
		t.Errorf("mean: sim %.1fms vs analytic %.1fms", res.MeanResponseMs, analytic.MeanMs)
	}
}

func TestResponseGrowsWithLoad(t *testing.T) {
	low, err := Run(singleClassConfig(0.005, 2, 20, 2))
	if err != nil {
		t.Fatal(err)
	}
	high, err := Run(singleClassConfig(0.005, 2, 70, 2))
	if err != nil {
		t.Fatal(err)
	}
	if high.MeanResponseMs <= low.MeanResponseMs {
		t.Errorf("response should grow with load: %.2f -> %.2f",
			low.MeanResponseMs, high.MeanResponseMs)
	}
}

func TestConfigValidation(t *testing.T) {
	good := singleClassConfig(0.01, 1, 10, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Lambda = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero lambda should fail")
	}
	bad = good
	bad.DiskArms = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero arms should fail")
	}
	bad = good
	bad.Transactions = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero transactions should fail")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := singleClassConfig(0.01, 1, 30, 2)
	cfg.Transactions = 5000
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanResponseMs != b.MeanResponseMs || a.Completed != b.Completed {
		t.Error("same seed must reproduce the same result")
	}
}
