// Package xval cross-validates the storage engine against the modeling
// pipeline: the same TPC-C workload is (a) executed by the real engine
// (internal/engine/db) with its buffer manager's reference stream tapped,
// (b) replayed through the trace-driven LRU stack-distance simulation
// (internal/buffer), and (c) predicted in closed form by Che's IRM
// approximation (internal/analytic).
//
// The three layers are held to different standards:
//
//   - engine vs replay: EXACT. The engine's LRU buffer manager and the
//     stack-distance simulation implement the same policy over the same
//     reference stream, so hit/miss counts must be bit-identical at the
//     engine's buffer size. Any divergence is a bug in one of them, and
//     Replay reports the first diverging access.
//   - replay vs synthetic simulation: TOLERANCE. The synthetic stream
//     (internal/workload + sequential packing) models the engine's access
//     pattern — same NURand distributions, same key-order loading — but
//     not its physical details (slot bitmaps, insert probing, B-tree
//     residency), so the per-relation miss-rate curves agree only within
//     a few percent. Gated for the static skewed relations the model
//     targets (customer, stock, item).
//   - simulation vs analytic: TOLERANCE. Che's approximation under the
//     IRM is exact only in the large-cache limit; the comparison bound
//     quantifies how far the closed form drifts from the simulated truth.
//
// See EXPERIMENTS.md ("Cross-validating the engine against the model")
// for the tolerance rationale and a sample report.
package xval

import (
	"fmt"

	"tpccmodel/internal/buffer"
	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/bufmgr"
	"tpccmodel/internal/engine/db"
	"tpccmodel/internal/engine/storage"
	"tpccmodel/internal/experiments"
	"tpccmodel/internal/sim"
	"tpccmodel/internal/tpcc"
	"tpccmodel/internal/workload"
)

// Stream records a buffer manager's reference stream as parallel arrays:
// one entry per tap callback, in LRU decision order. The recorder is not
// safe for concurrent use — the cross-validation harness drives the engine
// single-threaded, which is also what makes the engine's pin order equal
// its LRU update order (see bufmgr.Tap).
type Stream struct {
	pages []uint64
	rels  []uint8
	flags []uint8
	mark  int
}

const (
	// flagAlloc marks a page allocation: the page becomes resident at the
	// MRU position without counting as an access.
	flagAlloc = 1 << 0
	// flagHit records the engine's own hit/miss verdict for the access.
	flagHit = 1 << 1
)

// Tap returns the bufmgr.Tap that appends to the stream. Install it via
// db.SetBufferTap before Load so the stream covers the whole pool history.
func (s *Stream) Tap() bufmgr.Tap {
	return func(id storage.PageID, cls int, alloc, hit bool) {
		var f uint8
		if alloc {
			f |= flagAlloc
		}
		if hit {
			f |= flagHit
		}
		s.pages = append(s.pages, uint64(id))
		s.rels = append(s.rels, uint8(cls))
		s.flags = append(s.flags, f)
	}
}

// Mark starts the measurement window: events recorded before Mark warm the
// replayed LRU stack but are not counted. Call it together with the
// engine's ResetBufferStats so both sides measure the same window.
func (s *Stream) Mark() { s.mark = len(s.pages) }

// Len returns the number of recorded events (accesses plus allocations).
func (s *Stream) Len() int { return len(s.pages) }

// MeasuredAccesses returns the number of counted accesses: non-allocation
// events at or after the mark.
func (s *Stream) MeasuredAccesses() int64 {
	var n int64
	for i := s.mark; i < len(s.flags); i++ {
		if s.flags[i]&flagAlloc == 0 {
			n++
		}
	}
	return n
}

// universe returns one past the largest page id in the stream.
func (s *Stream) universe() int64 {
	var max uint64
	for _, p := range s.pages {
		if p > max {
			max = p
		}
	}
	if len(s.pages) == 0 {
		return 0
	}
	return int64(max) + 1
}

// Counts is a hit/miss pair.
type Counts struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// MissRate returns Misses/(Hits+Misses), or 0 when empty.
func (c Counts) MissRate() float64 {
	if n := c.Hits + c.Misses; n > 0 {
		return float64(c.Misses) / float64(n)
	}
	return 0
}

// Divergence identifies the first access where the engine's recorded
// hit/miss verdict disagrees with the replayed LRU simulation — the
// minimal stream prefix exhibiting the disagreement, since every earlier
// access agreed.
type Divergence struct {
	// Index is the event's position in the recorded stream.
	Index int `json:"index"`
	// Rel is the relation the access was accounted to.
	Rel string `json:"relation"`
	// Page is the page id accessed.
	Page uint64 `json:"page"`
	// EngineHit is the engine's verdict; ReplayHit the simulation's.
	EngineHit bool `json:"engine_hit"`
	ReplayHit bool `json:"replay_hit"`
	// Distance is the replayed LRU stack distance of the access
	// (buffer.ColdDistance for a first reference).
	Distance int64 `json:"stack_distance"`
}

func (d *Divergence) String() string {
	return fmt.Sprintf("access %d (%s page %d): engine hit=%v, replay hit=%v (stack distance %d)",
		d.Index, d.Rel, d.Page, d.EngineHit, d.ReplayHit, d.Distance)
}

// ReplayResult is the outcome of replaying a stream at one capacity.
type ReplayResult struct {
	// PerRel counts measured (post-mark) accesses per relation.
	PerRel [core.NumRelations]Counts
	// Total sums PerRel.
	Total Counts
	// Divergences counts accesses (over the WHOLE stream, warmup
	// included) whose replayed verdict contradicts the engine's; First
	// is the earliest of them, nil when the replay matches everywhere.
	Divergences int
	First       *Divergence
}

// Replay runs the recorded stream through the dense LRU stack-distance
// simulation at the given capacity: an access hits iff its stack distance
// is at most the capacity (LRU's inclusion property), and allocations
// touch the stack without being counted — exactly the engine's Allocate
// semantics. It returns per-relation measured counts plus the first
// divergence from the engine's recorded verdicts, if any.
func (s *Stream) Replay(capacityPages int64) ReplayResult {
	var res ReplayResult
	dense := buffer.NewDenseStackSim(s.universe())
	for i, p := range s.pages {
		d := dense.Access(int64(p))
		if s.flags[i]&flagAlloc != 0 {
			continue
		}
		hit := d != buffer.ColdDistance && d <= capacityPages
		engineHit := s.flags[i]&flagHit != 0
		if hit != engineHit {
			res.Divergences++
			if res.First == nil {
				res.First = &Divergence{
					Index:     i,
					Rel:       core.Relation(s.rels[i]).String(),
					Page:      p,
					EngineHit: engineHit,
					ReplayHit: hit,
					Distance:  d,
				}
			}
		}
		if i < s.mark {
			continue
		}
		rel := s.rels[i]
		if hit {
			res.PerRel[rel].Hits++
			res.Total.Hits++
		} else {
			res.PerRel[rel].Misses++
			res.Total.Misses++
		}
	}
	return res
}

// Curves replays the stream once and returns the full miss-rate-vs-
// capacity curve of every relation (plus the overall curve), counting only
// measured accesses. The reference stream is policy-independent — which
// pages a transaction touches does not depend on what the buffer evicted —
// so one engine run at one buffer size yields the engine's exact miss
// curve at EVERY buffer size, comparable point by point against the
// synthetic simulation's curves. All curves are finalized.
func (s *Stream) Curves() (perRel [core.NumRelations]*buffer.MissCurve, overall *buffer.MissCurve) {
	for rel := range perRel {
		perRel[rel] = &buffer.MissCurve{}
	}
	overall = &buffer.MissCurve{}
	dense := buffer.NewDenseStackSim(s.universe())
	for i, p := range s.pages {
		d := dense.Access(int64(p))
		if s.flags[i]&flagAlloc != 0 || i < s.mark {
			continue
		}
		perRel[s.rels[i]].Add(d)
	}
	for rel := range perRel {
		perRel[rel].Finalize()
		overall.Merge(perRel[rel])
	}
	overall.Finalize()
	return perRel, overall
}

// Config parameterizes a cross-validation run.
type Config struct {
	// Warehouses, PageSize, BufferPages size the engine instance.
	Warehouses  int `json:"warehouses"`
	PageSize    int `json:"page_size"`
	BufferPages int `json:"buffer_pages"`
	// WarmupTxns transactions run before the measurement window opens;
	// MeasureTxns are measured.
	WarmupTxns  int `json:"warmup_txns"`
	MeasureTxns int `json:"measure_txns"`
	// Seed drives the engine load and both transaction streams.
	Seed uint64 `json:"seed"`
	// CapacitiesPages are the buffer sizes (pages) of the three-way
	// curve comparison; the engine's own BufferPages need not be among
	// them (the exact gate runs there regardless).
	CapacitiesPages []int64 `json:"capacities_pages"`
	// SimWarmupTxns, SimBatches, SimBatchTxns configure the synthetic
	// stack-distance simulation.
	SimWarmupTxns int64 `json:"sim_warmup_txns"`
	SimBatches    int   `json:"sim_batches"`
	SimBatchTxns  int64 `json:"sim_batch_txns"`
	// TolReplaySim bounds |engine replay − synthetic sim| per relation
	// and capacity; TolAnalytic bounds |synthetic sim − Che closed form|.
	TolReplaySim float64 `json:"tol_replay_sim"`
	TolAnalytic  float64 `json:"tol_analytic"`
}

// DefaultConfig returns a laptop-fast configuration (seconds).
func DefaultConfig() Config {
	return Config{
		Warehouses:      1,
		PageSize:        4096,
		BufferPages:     2048,
		WarmupTxns:      2_000,
		MeasureTxns:     8_000,
		Seed:            1993,
		CapacitiesPages: []int64{256, 512, 1024, 2048, 4096, 8192},
		SimWarmupTxns:   2_000,
		SimBatches:      3,
		SimBatchTxns:    4_000,
		// Measured worst-case deltas at this scale are ~0.10 (engine vs
		// sim, customer at small buffers: the engine's per-call repeat
		// pattern differs slightly from the modeled stream) and ~0.12
		// (sim vs Che, stock near the knee where the IRM approximation
		// is weakest). The gates sit just above those maxima so they
		// trip on regressions, not on the known modeling error. See
		// EXPERIMENTS.md for the full rationale.
		TolReplaySim: 0.12,
		TolAnalytic:  0.15,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Warehouses <= 0 {
		return fmt.Errorf("xval: warehouses must be positive")
	}
	if c.BufferPages <= 0 {
		return fmt.Errorf("xval: buffer pages must be positive")
	}
	if c.WarmupTxns < 0 || c.MeasureTxns <= 0 {
		return fmt.Errorf("xval: need a positive measurement window")
	}
	if len(c.CapacitiesPages) == 0 {
		return fmt.Errorf("xval: need at least one comparison capacity")
	}
	for _, cap := range c.CapacitiesPages {
		if cap <= 0 {
			return fmt.Errorf("xval: capacities must be positive, got %d", cap)
		}
	}
	if c.SimBatches < 2 || c.SimBatchTxns <= 0 || c.SimWarmupTxns < 0 {
		return fmt.Errorf("xval: need >= 2 simulation batches of positive size")
	}
	if c.TolReplaySim <= 0 || c.TolAnalytic <= 0 {
		return fmt.Errorf("xval: tolerances must be positive")
	}
	return nil
}

// ExactRow compares the engine's measured per-relation counters against
// the replayed simulation at the engine's buffer size.
type ExactRow struct {
	Relation     string `json:"relation"`
	EngineHits   int64  `json:"engine_hits"`
	EngineMisses int64  `json:"engine_misses"`
	ReplayHits   int64  `json:"replay_hits"`
	ReplayMisses int64  `json:"replay_misses"`
	Match        bool   `json:"match"`
}

// Row is one three-way comparison cell: a modeled relation at a capacity.
type Row struct {
	Relation      string  `json:"relation"`
	CapacityPages int64   `json:"capacity_pages"`
	// EngineMiss is the replayed engine-stream miss rate (bit-identical
	// to what the engine would measure at this capacity), SimMiss the
	// synthetic trace-driven rate, AnalyticMiss the per-call-adjusted
	// Che/IRM closed form.
	EngineMiss    float64 `json:"engine_miss"`
	SimMiss       float64 `json:"sim_miss"`
	AnalyticMiss  float64 `json:"analytic_miss"`
	DeltaEngSim   float64 `json:"delta_engine_sim"`
	DeltaSimAna   float64 `json:"delta_sim_analytic"`
	EngSimOK      bool    `json:"engine_sim_ok"`
	SimAnalyticOK bool    `json:"sim_analytic_ok"`
}

// Result is the full cross-validation outcome.
type Result struct {
	Config Config `json:"config"`
	// MeasuredAccesses counts the engine accesses in the window.
	MeasuredAccesses int64 `json:"measured_accesses"`
	// Exact holds the engine-vs-replay comparison at BufferPages, one
	// row per relation the engine touched.
	Exact      []ExactRow  `json:"exact"`
	ExactMatch bool        `json:"exact_match"`
	Divergence *Divergence `json:"divergence,omitempty"`
	// Rows holds the three-way tolerance comparison for the modeled
	// relations (customer, stock, item) at every comparison capacity.
	Rows          []Row `json:"rows"`
	EngSimOK      bool  `json:"engine_sim_ok"`
	SimAnalyticOK bool  `json:"sim_analytic_ok"`
}

// OK reports whether every gate passed.
func (r *Result) OK() bool { return r.ExactMatch && r.EngSimOK && r.SimAnalyticOK }

// Err returns a descriptive error when a gate failed, nil otherwise.
func (r *Result) Err() error {
	if r.ExactMatch && r.EngSimOK && r.SimAnalyticOK {
		return nil
	}
	if !r.ExactMatch {
		if r.Divergence != nil {
			return fmt.Errorf("xval: engine and replay disagree: first divergence at %s", r.Divergence)
		}
		return fmt.Errorf("xval: engine and replay counters disagree")
	}
	for _, row := range r.Rows {
		if !row.EngSimOK {
			return fmt.Errorf("xval: %s at %d pages: engine %.4f vs sim %.4f exceeds tolerance %.3f",
				row.Relation, row.CapacityPages, row.EngineMiss, row.SimMiss, r.Config.TolReplaySim)
		}
		if !row.SimAnalyticOK {
			return fmt.Errorf("xval: %s at %d pages: sim %.4f vs analytic %.4f exceeds tolerance %.3f",
				row.Relation, row.CapacityPages, row.SimMiss, row.AnalyticMiss, r.Config.TolAnalytic)
		}
	}
	return fmt.Errorf("xval: agreement gate failed")
}

// modeledRelations are the static skewed relations the analytic model and
// the tolerance gates cover, in analytic class order.
var modeledRelations = []core.Relation{core.Customer, core.Stock, core.Item}

// Run executes the full cross-validation: engine run with tapped buffer
// manager, exact replay gate, and the three-way tolerance comparison.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	// Engine run, single-threaded: load, warm up, then measure with the
	// buffer counters and the stream mark aligned. BufferPartitions is
	// pinned at 1: the Tap reference stream is totally ordered only within
	// a partition, and Replay's LRU bit-identity claim needs the global
	// order — the unified pool is the gated configuration.
	d, err := db.Open(db.Config{
		Warehouses:       cfg.Warehouses,
		PageSize:         cfg.PageSize,
		BufferPages:      cfg.BufferPages,
		BufferPartitions: 1,
	})
	if err != nil {
		return nil, err
	}
	var stream Stream
	d.SetBufferTap(stream.Tap())
	if err := d.Load(cfg.Seed); err != nil {
		return nil, err
	}
	runner := db.NewRunner(d, cfg.Seed+1, tpcc.DefaultMix())
	if err := runner.Run(cfg.WarmupTxns); err != nil {
		return nil, err
	}
	stream.Mark()
	d.ResetBufferStats()
	if err := runner.Run(cfg.MeasureTxns); err != nil {
		return nil, err
	}
	d.SetBufferTap(nil)

	res := &Result{Config: cfg, MeasuredAccesses: stream.MeasuredAccesses()}

	// Gate 1: exact. Same policy, same stream, same capacity — the
	// engine's counters and the replayed stack simulation must agree
	// bit for bit, per relation.
	rep := stream.Replay(int64(cfg.BufferPages))
	engine := d.RelationStats()
	res.ExactMatch = rep.First == nil
	res.Divergence = rep.First
	for _, rel := range core.Relations() {
		es, rs := engine[rel], rep.PerRel[rel]
		if es.Accesses() == 0 && rs.Hits+rs.Misses == 0 {
			continue
		}
		match := es.Hits == rs.Hits && es.Misses == rs.Misses
		if !match {
			res.ExactMatch = false
		}
		res.Exact = append(res.Exact, ExactRow{
			Relation:     rel.String(),
			EngineHits:   es.Hits,
			EngineMisses: es.Misses,
			ReplayHits:   rs.Hits,
			ReplayMisses: rs.Misses,
			Match:        match,
		})
	}

	// Gate 2 and 3: the engine's replayed curves vs the synthetic
	// trace-driven curves vs the analytic closed form.
	engineCurves, _ := stream.Curves()
	wl := workload.DefaultConfig(cfg.Warehouses, cfg.Seed)
	wl.DB.PageSize = cfg.PageSize
	simRes, err := sim.RunCurve(sim.CurveConfig{
		Workload:        wl,
		Packing:         sim.PackSequential,
		CapacitiesPages: cfg.CapacitiesPages,
		WarmupTxns:      cfg.SimWarmupTxns,
		Batches:         cfg.SimBatches,
		BatchTxns:       cfg.SimBatchTxns,
		Level:           0.90,
	})
	if err != nil {
		return nil, err
	}
	opts := experiments.Options{
		Warehouses: cfg.Warehouses,
		Seed:       cfg.Seed,
		PageSize:   cfg.PageSize,
	}
	model, uniqueRatio, err := experiments.AnalyticModel(opts, simRes)
	if err != nil {
		return nil, err
	}

	res.EngSimOK, res.SimAnalyticOK = true, true
	for _, capPages := range cfg.CapacitiesPages {
		che := model.MissRates(capPages)
		for ci, rel := range modeledRelations {
			row := Row{
				Relation:      rel.String(),
				CapacityPages: capPages,
				EngineMiss:    engineCurves[rel].MissRate(capPages),
				SimMiss:       simRes.MissRate(rel, capPages),
				AnalyticMiss:  che[ci] * uniqueRatio[rel],
			}
			row.DeltaEngSim = abs(row.EngineMiss - row.SimMiss)
			row.DeltaSimAna = abs(row.SimMiss - row.AnalyticMiss)
			row.EngSimOK = row.DeltaEngSim <= cfg.TolReplaySim
			row.SimAnalyticOK = row.DeltaSimAna <= cfg.TolAnalytic
			if !row.EngSimOK {
				res.EngSimOK = false
			}
			if !row.SimAnalyticOK {
				res.SimAnalyticOK = false
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
