package xval

import (
	"strings"
	"testing"
)

// TestDistGateAgrees runs a reduced gate: measured cross-shard rates on
// a real 3-shard cluster must match the Appendix A expectations.
func TestDistGateAgrees(t *testing.T) {
	cfg := DefaultDistGateConfig()
	cfg.Txns = 1500
	if testing.Short() {
		cfg.Txns = 600
	}
	res, err := RunDistGate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		var sb strings.Builder
		_ = res.WriteTSV(&sb)
		t.Fatalf("gate failed: %v\n%s", res.Err(), sb.String())
	}
	if res.Measured.NewOrders == 0 || res.Measured.Payments == 0 {
		t.Fatalf("no measurements: %+v", res.Measured)
	}
	var sb strings.Builder
	if err := res.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E[R_s]", "RC_cust", "PASS"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, sb.String())
		}
	}
}

func TestDistGateConfigValidate(t *testing.T) {
	bad := []DistGateConfig{
		{Shards: 0, WarehousesPerShard: 1, Txns: 1, Workers: 1, Z: 5},
		{Shards: 1, WarehousesPerShard: 1, Txns: 0, Workers: 1, Z: 5},
		{Shards: 1, WarehousesPerShard: 1, Txns: 1, Workers: 1, Z: 0},
		{Shards: 1, WarehousesPerShard: 1, Txns: 1, Workers: 1, Z: 5, RemoteStockProb: 1.5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if err := DefaultDistGateConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}
