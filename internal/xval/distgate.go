package xval

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"tpccmodel/internal/engine/db"
	"tpccmodel/internal/engine/shard"
	"tpccmodel/internal/model"
	"tpccmodel/internal/tpcc"
)

// DistGateConfig sizes the Appendix A cross-shard validation gate: a
// real sharded cluster is driven with the benchmark's remote-access
// distributions and the measured remote-call rates are compared against
// model.DistConfig.Expect() (Tables 6/7, Figures 11/12) within a
// statistical tolerance.
type DistGateConfig struct {
	// Shards is the node count N; WarehousesPerShard the group size.
	Shards             int
	WarehousesPerShard int
	// Txns and Workers size the measurement run.
	Txns    int
	Workers int
	Seed    uint64
	// RemoteStockProb / RemotePaymentProb override the benchmark's
	// 1%/15% (negative = benchmark values). CI elevates them for
	// statistical power at small Txns.
	RemoteStockProb   float64
	RemotePaymentProb float64
	// Z is the sigma multiplier on the per-metric standard error
	// (tolerance = Z*SE + AbsFloor).
	Z float64
	// AbsFloor is an absolute tolerance floor.
	AbsFloor float64
}

// DefaultDistGateConfig returns the CI gate configuration: elevated
// remote probabilities so a few thousand transactions measure every
// quantity with useful precision.
func DefaultDistGateConfig() DistGateConfig {
	return DistGateConfig{
		Shards:             3,
		WarehousesPerShard: 1,
		Txns:               4000,
		Workers:            4,
		Seed:               1,
		RemoteStockProb:    0.10,
		RemotePaymentProb:  0.30,
		Z:                  5,
		AbsFloor:           0.02,
	}
}

// Validate checks the configuration.
func (c DistGateConfig) Validate() error {
	if c.Shards < 1 || c.WarehousesPerShard < 1 {
		return fmt.Errorf("xval: shards and warehouses per shard must be >= 1")
	}
	if c.Txns < 1 || c.Workers < 1 {
		return fmt.Errorf("xval: txns and workers must be >= 1")
	}
	if c.Z <= 0 {
		return fmt.Errorf("xval: z must be > 0")
	}
	for _, p := range []float64{c.RemoteStockProb, c.RemotePaymentProb} {
		if p > 1 {
			return fmt.Errorf("xval: remote probability %v out of [0,1]", p)
		}
	}
	return nil
}

// DistRow compares one Appendix A quantity.
type DistRow struct {
	// Name is the Table 5 symbol.
	Name string
	// Measured is the run's per-transaction rate; Expected the model's.
	Measured, Expected float64
	// Tol is the tolerance (Z standard errors plus the floor) and
	// Samples the denominator behind the standard error.
	Tol     float64
	Samples int64
	OK      bool
}

// DistResult is the gate's outcome.
type DistResult struct {
	Config   DistGateConfig
	Model    model.DistConfig
	Expect   model.Expectations
	Measured shard.Measured
	Stats    shard.RunStats
	Rows     []DistRow
	Elapsed  time.Duration
}

// OK reports whether every quantity agreed.
func (r *DistResult) OK() bool {
	for _, row := range r.Rows {
		if !row.OK {
			return false
		}
	}
	return true
}

// Err returns a gate error naming the first disagreeing quantity.
func (r *DistResult) Err() error {
	for _, row := range r.Rows {
		if !row.OK {
			return fmt.Errorf("xval: %s measured %.4f vs Appendix A %.4f (tolerance %.4f over %d samples)",
				row.Name, row.Measured, row.Expected, row.Tol, row.Samples)
		}
	}
	return nil
}

// WriteTSV prints the comparison, one row per Appendix A quantity.
func (r *DistResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"# Appendix A cross-shard gate: N=%d, p_stock=%.3g, p_pay=%.3g, %d txns (%d new-orders, %d payments): %s\n",
		r.Model.Nodes, r.Model.RemoteStockProb, r.Model.RemotePaymentProb,
		r.Stats.Acknowledged(), r.Measured.NewOrders, r.Measured.Payments,
		verdict(r.OK())); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "quantity\tmeasured\texpected\ttolerance\tsamples\tok"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s\t%.6g\t%.6g\t%.6g\t%d\t%v\n",
			row.Name, row.Measured, row.Expected, row.Tol, row.Samples, row.OK); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the full result as indented JSON.
func (r *DistResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// distTol converts a per-sample variance bound into the gate tolerance:
// Z standard errors of the mean over n samples, plus the floor.
func (c DistGateConfig) distTol(variance float64, n int64) float64 {
	if n < 1 {
		n = 1
	}
	return c.Z*math.Sqrt(variance/float64(n)) + c.AbsFloor
}

// RunDistGate opens a shard.Cluster, drives the measurement run, and
// compares every measured Appendix A quantity against the analytic
// expectations. The returned error is a setup failure only — gate
// disagreement lands in the result (check OK / Err).
func RunDistGate(cfg DistGateConfig) (*DistResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ccfg := shard.DefaultConfig(cfg.Shards)
	ccfg.WarehousesPerShard = cfg.WarehousesPerShard
	ccfg.Seed = cfg.Seed
	c, err := shard.Open(ccfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	st, err := shard.Run(c, cfg.Seed, tpcc.DefaultMix(), cfg.Txns, cfg.Workers,
		db.DefaultRetryPolicy(), cfg.RemoteStockProb, cfg.RemotePaymentProb)
	if err != nil {
		return nil, fmt.Errorf("xval: measurement run: %w", err)
	}
	if n := c.Quiesce(time.Second); n > 0 {
		return nil, fmt.Errorf("xval: %d participant commits pending after run", n)
	}
	if err := c.CheckAll(); err != nil {
		return nil, fmt.Errorf("xval: post-run consistency: %w", err)
	}

	mc := model.DistConfig{
		Nodes:             cfg.Shards,
		RemoteStockProb:   cfg.RemoteStockProb,
		RemotePaymentProb: cfg.RemotePaymentProb,
		ItemReplicated:    true, // every shard loads the full Item relation
		// The engine draws last names from NU(255) at both load and
		// select time, so the by-name group size is the
		// selection-weighted NURand expectation, not the paper's
		// uniform-names 3.
		ByNameSelected: model.NUByNameGroupSize(),
	}
	if cfg.RemoteStockProb < 0 {
		mc.RemoteStockProb = tpcc.RemoteStockProb
	}
	if cfg.RemotePaymentProb < 0 {
		mc.RemotePaymentProb = tpcc.RemotePaymentProb
	}
	e := mc.Expect()
	m := st.Xval

	res := &DistResult{
		Config: cfg, Model: mc, Expect: e, Measured: m, Stats: st,
		Elapsed: time.Since(start),
	}
	nNO, nPay := m.NewOrders, m.Payments
	// Per-sample variance bounds: the remote-line count per New-Order is
	// Binomial(10, PS); all-local is Bernoulli(L); unique remote sites
	// are bounded by the remote-line count (same variance bound); the
	// remote-customer indicator is Bernoulli(U_cust). Remote customer
	// calls per Payment are 0 or selected+1, selected averaging
	// ByNameSelected on the by-name path, so bound E[V^2] by
	// 2·U_cust·E[(selected+1)^2] with a factor-2 slack for the NURand
	// group-size dispersion.
	vLine := float64(tpcc.ItemsPerOrder) * e.PS * (1 - e.PS)
	sel := mc.ByNameSelected
	vCust := 2 * e.UCust * (0.4*4 + 0.6*(sel+1)*(sel+1))
	row := func(name string, meas, exp, variance float64, n int64) {
		tol := cfg.distTol(variance, n)
		res.Rows = append(res.Rows, DistRow{
			Name: name, Measured: meas, Expected: exp, Tol: tol, Samples: n,
			OK: math.Abs(meas-exp) <= tol,
		})
	}
	row("E[R_s]", m.ERs, e.ERs, vLine, nNO)
	row("RC_stock", m.RCStock, e.RCStock, 4*vLine, nNO)
	row("L_stock", m.LStock, e.LStock, e.LStock*(1-e.LStock), nNO)
	row("U_stock", m.UStock, e.UStock, vLine, nNO)
	row("RC_cust", m.RCCust, e.RCCust, vCust, nPay)
	row("U_cust", m.UCust, e.UCust, e.UCust*(1-e.UCust), nPay)
	return res, nil
}
