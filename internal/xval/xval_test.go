package xval

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/storage"
)

// record appends one event to a hand-built stream through the real tap.
func record(s *Stream, page uint64, rel core.Relation, alloc, hit bool) {
	s.Tap()(storage.PageID(page), int(rel), alloc, hit)
}

func TestReplayDivergenceReporting(t *testing.T) {
	// Capacity 1: page 0, page 1 (0 evicted), page 0 again — a genuine
	// LRU miss that we falsely record as an engine hit. The replay must
	// flag exactly that access, with its stack distance.
	var s Stream
	record(&s, 0, core.Stock, false, false)
	record(&s, 1, core.Stock, false, false)
	record(&s, 0, core.Customer, false, true) // lie: engine says hit
	rep := s.Replay(1)
	if rep.Divergences != 1 || rep.First == nil {
		t.Fatalf("want exactly one divergence, got %d (first=%v)", rep.Divergences, rep.First)
	}
	d := rep.First
	if d.Index != 2 || d.Page != 0 || !d.EngineHit || d.ReplayHit || d.Distance != 2 {
		t.Fatalf("wrong divergence detail: %+v", d)
	}
	if d.Rel != core.Customer.String() {
		t.Fatalf("divergence relation = %q, want customer", d.Rel)
	}
	if !strings.Contains(d.String(), "page 0") {
		t.Fatalf("divergence string %q does not name the page", d.String())
	}
	// The same stream at capacity 2 really does hit: no divergence.
	if rep := s.Replay(2); rep.First != nil {
		t.Fatalf("unexpected divergence at capacity 2: %v", rep.First)
	}
}

func TestReplayAllocationsAreUncountedTouches(t *testing.T) {
	// An allocation makes the page resident at MRU without counting: the
	// following access must be a hit at any capacity >= 1, and only that
	// access may appear in the counts.
	var s Stream
	record(&s, 0, core.Order, true, false)
	record(&s, 0, core.Order, false, true)
	rep := s.Replay(1)
	if rep.First != nil {
		t.Fatalf("unexpected divergence: %v", rep.First)
	}
	if rep.Total != (Counts{Hits: 1, Misses: 0}) {
		t.Fatalf("counts = %+v, want exactly the one hit", rep.Total)
	}
	if got := s.MeasuredAccesses(); got != 1 {
		t.Fatalf("MeasuredAccesses = %d, want 1", got)
	}
}

func TestReplayMarkSplitsWarmupFromMeasurement(t *testing.T) {
	// Pre-mark events warm the stack but are not counted: page 0 touched
	// before the mark makes the post-mark access a hit, yet the counts
	// hold only the measured window.
	var s Stream
	record(&s, 0, core.Item, false, false)
	record(&s, 1, core.Item, false, false)
	s.Mark()
	record(&s, 0, core.Item, false, true)
	rep := s.Replay(4)
	if rep.First != nil {
		t.Fatalf("unexpected divergence: %v", rep.First)
	}
	if rep.PerRel[core.Item] != (Counts{Hits: 1, Misses: 0}) {
		t.Fatalf("measured counts = %+v, want 1 hit", rep.PerRel[core.Item])
	}
	// Curves see the same window.
	perRel, overall := s.Curves()
	if perRel[core.Item].Accesses() != 1 || overall.Accesses() != 1 {
		t.Fatalf("curve accesses = %d/%d, want 1/1",
			perRel[core.Item].Accesses(), overall.Accesses())
	}
	if d := perRel[core.Item].MissRate(4); d != 0 {
		t.Fatalf("measured miss rate = %v, want 0 (warmed hit)", d)
	}
}

func TestCountsMissRate(t *testing.T) {
	if got := (Counts{}).MissRate(); got != 0 {
		t.Fatalf("empty MissRate = %v, want 0", got)
	}
	if got := (Counts{Hits: 3, Misses: 1}).MissRate(); got != 0.25 {
		t.Fatalf("MissRate = %v, want 0.25", got)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"warehouses", func(c *Config) { c.Warehouses = 0 }},
		{"buffer", func(c *Config) { c.BufferPages = 0 }},
		{"measure", func(c *Config) { c.MeasureTxns = 0 }},
		{"caps-empty", func(c *Config) { c.CapacitiesPages = nil }},
		{"caps-zero", func(c *Config) { c.CapacitiesPages = []int64{0} }},
		{"batches", func(c *Config) { c.SimBatches = 1 }},
		{"tol", func(c *Config) { c.TolReplaySim = 0 }},
		{"tol-analytic", func(c *Config) { c.TolAnalytic = -1 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
}

// testConfig is a fast reduced-scale run (~1s) for the agreement gates.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.WarmupTxns = 500
	cfg.MeasureTxns = 2_500
	cfg.CapacitiesPages = []int64{512, 2048, 8192}
	cfg.SimWarmupTxns = 1_000
	cfg.SimBatches = 2
	cfg.SimBatchTxns = 2_000
	return cfg
}

// TestEngineModelAgreement is the cross-validation acceptance gate: the
// engine's measured hit/miss counts must be bit-identical to the replayed
// LRU stack simulation for every relation, and the three-way comparison
// (engine replay vs synthetic simulation vs Che's closed form) must agree
// within the documented tolerances.
func TestEngineModelAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("engine run takes ~1s")
	}
	res, err := Run(testConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.ExactMatch {
		t.Fatalf("engine vs replay NOT bit-identical: first divergence %v, rows %+v",
			res.Divergence, res.Exact)
	}
	if len(res.Exact) == 0 {
		t.Fatal("no relations compared in the exact gate")
	}
	for _, e := range res.Exact {
		if !e.Match {
			t.Errorf("%s: engine %d/%d vs replay %d/%d",
				e.Relation, e.EngineHits, e.EngineMisses, e.ReplayHits, e.ReplayMisses)
		}
	}
	if res.MeasuredAccesses == 0 {
		t.Fatal("no accesses measured")
	}
	if err := res.Err(); err != nil {
		t.Fatalf("agreement gate failed: %v", err)
	}
	// Sanity on the report shape: three modeled relations per capacity.
	want := 3 * len(res.Config.CapacitiesPages)
	if len(res.Rows) != want {
		t.Fatalf("got %d comparison rows, want %d", len(res.Rows), want)
	}

	// The report must round-trip: TSV mentions both verdicts, JSON decodes
	// back to the same gate outcome.
	var tsv bytes.Buffer
	if err := res.WriteTSV(&tsv); err != nil {
		t.Fatalf("WriteTSV: %v", err)
	}
	if !strings.Contains(tsv.String(), "exact gate): PASS") {
		t.Fatalf("TSV missing exact-gate verdict:\n%s", tsv.String())
	}
	var js bytes.Buffer
	if err := res.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Result
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if !back.ExactMatch || back.MeasuredAccesses != res.MeasuredAccesses {
		t.Fatalf("JSON round-trip lost fields: %+v", back)
	}
}

// TestReplayMatchesMissCurveInclusion cross-checks Replay against Curves
// on the same recorded stream: by LRU's inclusion property the per-capacity
// counts derived from the miss curve must equal the direct replay.
func TestReplayMatchesMissCurveInclusion(t *testing.T) {
	var s Stream
	// A small synthetic stream with reuse, allocation, and growth.
	pages := []uint64{0, 1, 2, 0, 3, 1, 4, 2, 0, 5, 3, 0, 1}
	for i, p := range pages {
		record(&s, p, core.Stock, i == 6, i > 0 && p <= 2)
	}
	for _, cap := range []int64{1, 2, 3, 8} {
		rep := s.Replay(cap)
		perRel, _ := s.Curves()
		curve := perRel[core.Stock]
		wantMiss := curve.MissRate(cap)
		total := rep.PerRel[core.Stock]
		// The two compute misses/n vs 1-hits/n; allow the one-ulp gap.
		if got := total.MissRate(); math.Abs(got-wantMiss) > 1e-12 {
			t.Errorf("capacity %d: replay miss %v != curve miss %v", cap, got, wantMiss)
		}
		if n := total.Hits + total.Misses; n != curve.Accesses() {
			t.Errorf("capacity %d: replay counted %d accesses, curve %d", cap, n, curve.Accesses())
		}
	}
}
