package xval

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteTSV prints the agreement report: the exact engine-vs-replay section
// first, then the three-way tolerance comparison, one row per modeled
// relation per capacity.
func (r *Result) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"# engine vs replayed LRU at %d pages (exact gate): %s\n",
		r.Config.BufferPages, verdict(r.ExactMatch)); err != nil {
		return err
	}
	if r.Divergence != nil {
		if _, err := fmt.Fprintf(w, "# first divergence: %s\n", r.Divergence); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w,
		"relation\tengine_hits\tengine_misses\treplay_hits\treplay_misses\tmatch"); err != nil {
		return err
	}
	for _, e := range r.Exact {
		if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%v\n",
			e.Relation, e.EngineHits, e.EngineMisses, e.ReplayHits, e.ReplayMisses, e.Match); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w,
		"# three-way agreement (|engine-sim| <= %.3g: %s; |sim-analytic| <= %.3g: %s)\n",
		r.Config.TolReplaySim, verdict(r.EngSimOK),
		r.Config.TolAnalytic, verdict(r.SimAnalyticOK)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w,
		"relation\tcapacity_pages\tengine_miss\tsim_miss\tanalytic_miss\tdelta_engine_sim\tdelta_sim_analytic\tok"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s\t%d\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t%v\n",
			row.Relation, row.CapacityPages, row.EngineMiss, row.SimMiss,
			row.AnalyticMiss, row.DeltaEngSim, row.DeltaSimAna,
			row.EngSimOK && row.SimAnalyticOK); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the full result as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func verdict(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
