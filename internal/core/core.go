// Package core defines the shared primitives used across the TPC-C modeling
// pipeline: relation identifiers, logical tuple accesses, page identifiers,
// and operation kinds.
//
// The packages in this module form a pipeline patterned on Leutenegger &
// Dias, "A Modeling Study of the TPC-C Benchmark" (SIGMOD '93): a workload
// generator emits streams of Access records, packing policies map tuples to
// PageIDs, buffer policies consume PageIDs and report hits/misses, and the
// throughput model turns miss rates into transactions-per-minute and
// price/performance estimates.
package core

import "fmt"

// Relation identifies one of the nine TPC-C relations.
type Relation uint8

// The nine relations of the TPC-C logical database (paper Table 1).
const (
	Warehouse Relation = iota
	District
	Customer
	Stock
	Item
	Order
	NewOrder
	OrderLine
	History

	// NumRelations is the count of TPC-C relations; useful for sizing
	// per-relation accumulator arrays.
	NumRelations
)

var relationNames = [NumRelations]string{
	Warehouse: "warehouse",
	District:  "district",
	Customer:  "customer",
	Stock:     "stock",
	Item:      "item",
	Order:     "order",
	NewOrder:  "new-order",
	OrderLine: "order-line",
	History:   "history",
}

// String returns the relation name as printed in the paper's Table 1.
func (r Relation) String() string {
	if r < NumRelations {
		return relationNames[r]
	}
	return fmt.Sprintf("relation(%d)", uint8(r))
}

// Valid reports whether r names one of the nine TPC-C relations.
func (r Relation) Valid() bool { return r < NumRelations }

// Relations lists all nine relations in Table 1 order.
func Relations() []Relation {
	rs := make([]Relation, NumRelations)
	for i := range rs {
		rs[i] = Relation(i)
	}
	return rs
}

// Op is the kind of database call made against a tuple.
type Op uint8

// Operation kinds, following the paper's Table 2 taxonomy. NonUniqueSelect
// is the select-by-customer-name path (on average three tuples qualify);
// JoinFetch marks tuples fetched as part of the Stock-Level equi-join.
const (
	Select Op = iota
	Update
	Insert
	Delete
	NonUniqueSelect
	JoinFetch

	NumOps
)

var opNames = [NumOps]string{
	Select:          "select",
	Update:          "update",
	Insert:          "insert",
	Delete:          "delete",
	NonUniqueSelect: "non-unique-select",
	JoinFetch:       "join-fetch",
}

// String returns the lower-case operation name.
func (o Op) String() string {
	if o < NumOps {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsWrite reports whether the operation dirties the tuple's page.
func (o Op) IsWrite() bool { return o == Update || o == Insert || o == Delete }

// TxnType identifies one of the five TPC-C transaction types.
type TxnType uint8

// The five TPC-C transaction types (paper Table 2).
const (
	TxnNewOrder TxnType = iota
	TxnPayment
	TxnOrderStatus
	TxnDelivery
	TxnStockLevel

	NumTxnTypes
)

var txnNames = [NumTxnTypes]string{
	TxnNewOrder:    "new-order",
	TxnPayment:     "payment",
	TxnOrderStatus: "order-status",
	TxnDelivery:    "delivery",
	TxnStockLevel:  "stock-level",
}

// String returns the transaction type name.
func (t TxnType) String() string {
	if t < NumTxnTypes {
		return txnNames[t]
	}
	return fmt.Sprintf("txn(%d)", uint8(t))
}

// TxnTypes lists the five transaction types in Table 2 order.
func TxnTypes() []TxnType {
	ts := make([]TxnType, NumTxnTypes)
	for i := range ts {
		ts[i] = TxnType(i)
	}
	return ts
}

// Access is one logical tuple reference emitted by the workload generator.
// Tuple is a zero-based tuple ordinal within the relation (the generator
// linearizes composite keys such as (item-id, warehouse-id) into a single
// ordinal; see package workload).
type Access struct {
	Rel   Relation
	Tuple int64
	Op    Op
}

// PageID identifies a database page globally: the relation in the high bits
// and the zero-based page ordinal within the relation in the low bits.
// The encoding keeps PageID usable as a compact map key in buffer policies.
type PageID uint64

const pageBits = 56

// MakePageID packs a relation and page ordinal into a PageID. Page ordinals
// are limited to 2^56-1, far beyond any configuration this model supports.
func MakePageID(rel Relation, page int64) PageID {
	return PageID(uint64(rel)<<pageBits | uint64(page))
}

// Rel extracts the relation from a PageID.
func (p PageID) Rel() Relation { return Relation(p >> pageBits) }

// Page extracts the zero-based page ordinal within the relation.
func (p PageID) Page() int64 { return int64(p & (1<<pageBits - 1)) }

// String renders the page ID as "relation/page".
func (p PageID) String() string {
	return fmt.Sprintf("%s/%d", p.Rel(), p.Page())
}
