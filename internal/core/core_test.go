package core

import (
	"testing"
	"testing/quick"
)

func TestRelationNames(t *testing.T) {
	want := map[Relation]string{
		Warehouse: "warehouse",
		District:  "district",
		Customer:  "customer",
		Stock:     "stock",
		Item:      "item",
		Order:     "order",
		NewOrder:  "new-order",
		OrderLine: "order-line",
		History:   "history",
	}
	for r, n := range want {
		if r.String() != n {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), n)
		}
		if !r.Valid() {
			t.Errorf("%s should be valid", n)
		}
	}
	if Relation(200).Valid() {
		t.Error("relation 200 should be invalid")
	}
	if len(Relations()) != int(NumRelations) {
		t.Errorf("Relations() length = %d", len(Relations()))
	}
}

func TestOpProperties(t *testing.T) {
	writes := map[Op]bool{
		Select: false, Update: true, Insert: true, Delete: true,
		NonUniqueSelect: false, JoinFetch: false,
	}
	for op, w := range writes {
		if op.IsWrite() != w {
			t.Errorf("%s.IsWrite() = %v, want %v", op, op.IsWrite(), w)
		}
	}
	if Select.String() != "select" || NonUniqueSelect.String() != "non-unique-select" {
		t.Error("op names wrong")
	}
}

func TestTxnTypes(t *testing.T) {
	if len(TxnTypes()) != 5 {
		t.Fatalf("expected 5 transaction types")
	}
	if TxnNewOrder.String() != "new-order" || TxnStockLevel.String() != "stock-level" {
		t.Error("txn names wrong")
	}
}

func TestPageIDRoundTrip(t *testing.T) {
	f := func(relRaw uint8, pageRaw int64) bool {
		rel := Relation(relRaw % uint8(NumRelations))
		page := pageRaw
		if page < 0 {
			page = -page
		}
		page %= 1 << 40
		p := MakePageID(rel, page)
		return p.Rel() == rel && p.Page() == page
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageIDDistinctAcrossRelations(t *testing.T) {
	a := MakePageID(Stock, 7)
	b := MakePageID(Customer, 7)
	if a == b {
		t.Error("same page ordinal in different relations must differ")
	}
	if a.String() != "stock/7" {
		t.Errorf("String = %q", a.String())
	}
}
