package tpcc

import (
	"math"
	"testing"

	"tpccmodel/internal/core"
)

func TestTable1TuplesPerPage(t *testing.T) {
	// Paper Table 1, 4K pages.
	c := Config{Warehouses: 1, PageSize: 4096}
	want := map[core.Relation]int64{
		core.Warehouse: 46,
		core.District:  43,
		core.Customer:  6,
		core.Stock:     13,
		core.Item:      49,
		core.Order:     170,
		core.NewOrder:  512,
		core.OrderLine: 75,
		core.History:   89,
	}
	for r, w := range want {
		if got := c.TuplesPerPage(r); got != w {
			t.Errorf("TuplesPerPage(%s) = %d, want %d", r, got, w)
		}
	}
}

func TestTuplesPerPage8K(t *testing.T) {
	// The paper's 8K comparison: 26 stock tuples and 99 item tuples.
	c := Config{Warehouses: 1, PageSize: 8192}
	if got := c.TuplesPerPage(core.Stock); got != 26 {
		t.Errorf("8K stock tuples/page = %d, want 26", got)
	}
	if got := c.TuplesPerPage(core.Item); got != 99 {
		t.Errorf("8K item tuples/page = %d, want 99", got)
	}
}

func TestCardinalityScaling(t *testing.T) {
	c := Config{Warehouses: 20, PageSize: 4096}
	cases := map[core.Relation]int64{
		core.Warehouse: 20,
		core.District:  200,
		core.Customer:  600000,
		core.Stock:     2000000,
		core.Item:      100000, // does not scale
		core.Order:     0,      // grows without bound
		core.NewOrder:  0,
		core.OrderLine: 0,
		core.History:   0,
	}
	for r, w := range cases {
		if got := c.Cardinality(r); got != w {
			t.Errorf("Cardinality(%s) = %d, want %d", r, got, w)
		}
	}
}

func TestStaticStorageMatchesPaper(t *testing.T) {
	// Section 5.2: "Assuming 20 warehouses per node ... the space required
	// is 1.1 Gbytes" for Warehouse+District+Customer+Stock+Item.
	c := DefaultConfig()
	gb := float64(c.StaticBytes()) / 1e9 // decimal GB, as the paper uses
	if gb < 0.95 || gb > 1.2 {
		t.Errorf("static storage = %.3f GB, paper says ~1.1 GB", gb)
	}
}

func TestStaticPagesRoundsUp(t *testing.T) {
	c := Config{Warehouses: 1, PageSize: 4096}
	// 30000 customers at 6 per page = 5000 pages exactly.
	if got := c.StaticPages(core.Customer); got != 5000 {
		t.Errorf("customer pages = %d, want 5000", got)
	}
	// 10 districts at 43 per page = 1 page (rounds up).
	if got := c.StaticPages(core.District); got != 1 {
		t.Errorf("district pages = %d, want 1", got)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := (Config{Warehouses: 0, PageSize: 4096}).Validate(); err == nil {
		t.Error("zero warehouses should be invalid")
	}
	if err := (Config{Warehouses: 1, PageSize: 512}).Validate(); err == nil {
		t.Error("page smaller than customer tuple should be invalid")
	}
}

func TestMixes(t *testing.T) {
	for name, m := range map[string]Mix{"default": DefaultMix(), "minimum": MinimumMix()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s mix invalid: %v", name, err)
		}
	}
	d := DefaultMix()
	if d.Fraction(core.TxnNewOrder) != 0.43 || d.Fraction(core.TxnDelivery) != 0.05 {
		t.Errorf("default mix fractions wrong: %+v", d)
	}
	if !d.Drains() {
		t.Error("paper's default mix (5% delivery) must drain the New-Order relation")
	}
	// The paper's warning case: 45% New-Order with 4% Delivery grows
	// without bound.
	bad := Mix{
		core.TxnNewOrder:    0.45,
		core.TxnPayment:     0.43,
		core.TxnOrderStatus: 0.04,
		core.TxnDelivery:    0.04,
		core.TxnStockLevel:  0.04,
	}
	if bad.Drains() {
		t.Error("45/4 mix should NOT drain (0.4 removals < 0.45 inserts)")
	}
}

func TestMixValidateRejectsBad(t *testing.T) {
	var m Mix
	if err := m.Validate(); err == nil {
		t.Error("zero mix should be invalid")
	}
	m = DefaultMix()
	m[core.TxnPayment] = -0.1
	if err := m.Validate(); err == nil {
		t.Error("negative fraction should be invalid")
	}
}

func TestGrowthBytesPerNewOrder(t *testing.T) {
	// One order tuple (24B) + 10 order-lines (54B each) + Payment share of
	// history (46B * 0.44/0.43).
	got := GrowthBytesPerNewOrder(DefaultMix())
	want := 24 + 10*54 + 46*(0.44/0.43)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("GrowthBytesPerNewOrder = %v, want %v", got, want)
	}
	// Paper check: ~11 GB for 180 8-hour days. The paper's throughput is
	// roughly 200 new-order/min; 180*8h*60min*200tpm*611B/NO ≈ 10.6e9.
	days := 180.0 * 8 * 60 // minutes
	total := days * 200 * got / 1e9
	if total < 9 || total > 14 {
		t.Errorf("180-day growth at 200 tpm = %.1f GB, paper says ~11 GB", total)
	}
}

func TestPackedPageSpanCoversMappers(t *testing.T) {
	for _, pageSize := range []int{4096, 8192} {
		c := Config{Warehouses: 20, PageSize: pageSize}
		for _, r := range core.Relations() {
			span := c.PackedPageSpan(r)
			static := c.StaticPages(r)
			if static == 0 {
				if span != 0 {
					t.Errorf("%dB %s: growing relation has span %d, want 0", pageSize, r, span)
				}
				continue
			}
			// Group padding can only add pages, never drop any: the span
			// must cover the sequentially packed page count, and exceed it
			// by less than one page per group.
			if span < static {
				t.Errorf("%dB %s: span %d < static pages %d", pageSize, r, span, static)
			}
			tpp := c.TuplesPerPage(r)
			if span > static+c.Cardinality(r)/tpp {
				t.Errorf("%dB %s: span %d implausibly large (static %d)", pageSize, r, span, static)
			}
		}
	}
}

func TestPageOrdinalBasesContiguous(t *testing.T) {
	c := DefaultConfig()
	bases, total := c.PageOrdinalBases()
	var next int64
	for _, r := range core.Relations() {
		span := c.PackedPageSpan(r)
		if span == 0 {
			if bases[r] != -1 {
				t.Errorf("%s: growing relation base %d, want -1", r, bases[r])
			}
			continue
		}
		if bases[r] != next {
			t.Errorf("%s: base %d, want %d (ranges must be contiguous in Table 1 order)", r, bases[r], next)
		}
		next += span
	}
	if total != next {
		t.Errorf("staticTotal = %d, want %d", total, next)
	}
	if total <= 0 {
		t.Error("static page universe must be non-empty")
	}
}
