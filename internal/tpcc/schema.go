// Package tpcc encodes the TPC-C logical database design used throughout
// the paper: relation cardinalities and scaling rules (Table 1), tuple
// lengths, tuples-per-page for a given page size, storage sizing including
// the 180-day growth of the append-only relations, and the transaction mix
// (Table 2).
package tpcc

import (
	"fmt"

	"tpccmodel/internal/core"
)

// TupleLen holds the paper's Table 1 tuple lengths in bytes.
var TupleLen = [core.NumRelations]int{
	core.Warehouse: 89,
	core.District:  95,
	core.Customer:  655,
	core.Stock:     306,
	core.Item:      82,
	core.Order:     24,
	core.NewOrder:  8,
	core.OrderLine: 54,
	core.History:   46,
}

// Fixed TPC-C scaling constants.
const (
	DistrictsPerWarehouse = 10
	CustomersPerDistrict  = 3000
	CustomersPerWarehouse = DistrictsPerWarehouse * CustomersPerDistrict // 30K
	StockPerWarehouse     = 100000
	ItemCount             = 100000
	// NamesPerDistrict is the number of distinct customer last names per
	// district; 3000 customers share 1000 names so a select-by-name
	// returns three tuples on average.
	NamesPerDistrict = 1000
)

// Config fixes one model configuration: the database scale and page size.
type Config struct {
	// Warehouses is W in Table 1.
	Warehouses int
	// PageSize is the database page size in bytes; the paper uses 4096
	// for all experiments and 8192 for one skew comparison.
	PageSize int
}

// DefaultConfig returns the configuration used for the paper's buffer and
// throughput experiments: 20 warehouses (what a 10 MIPS processor supports
// at 80% utilization) and 4K pages.
func DefaultConfig() Config { return Config{Warehouses: 20, PageSize: 4096} }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Warehouses <= 0 {
		return fmt.Errorf("tpcc: warehouses must be positive, got %d", c.Warehouses)
	}
	if c.PageSize < TupleLen[core.Customer] {
		return fmt.Errorf("tpcc: page size %d smaller than largest tuple", c.PageSize)
	}
	return nil
}

// Cardinality returns the Table 1 cardinality of a relation for this scale.
// The order, new-order, order-line, and history relations grow without
// bound as transactions execute; their static cardinality is 0 and their
// populated size is owned by the workload generator.
func (c Config) Cardinality(r core.Relation) int64 {
	w := int64(c.Warehouses)
	switch r {
	case core.Warehouse:
		return w
	case core.District:
		return w * DistrictsPerWarehouse
	case core.Customer:
		return w * CustomersPerWarehouse
	case core.Stock:
		return w * StockPerWarehouse
	case core.Item:
		return ItemCount
	default:
		return 0
	}
}

// TuplesPerPage returns how many whole tuples of relation r fit in one
// page; the paper assumes the remainder of each page is wasted ("only
// integral units of tuples fit per page").
func (c Config) TuplesPerPage(r core.Relation) int64 {
	return int64(c.PageSize / TupleLen[r])
}

// StaticPages returns the number of pages holding the statically sized
// relations (0 for the growing relations), assuming sequential packing with
// integral tuples per page.
func (c Config) StaticPages(r core.Relation) int64 {
	card := c.Cardinality(r)
	if card == 0 {
		return 0
	}
	tpp := c.TuplesPerPage(r)
	return (card + tpp - 1) / tpp
}

// PackedPageSpan returns the number of page ordinals relation r can span
// under the group-preserving packings of the paper's Section 3. The
// warehouse-scaling skewed relations repeat a fixed-size group (a
// district's 3000 customers, a warehouse's 100000 stock tuples, the single
// 100000-item group) and every packing strategy — sequential, optimized,
// shuffled — permutes tuples only within a group, padding each group to
// whole pages; the span can therefore slightly exceed StaticPages when the
// group size is not a multiple of TuplesPerPage. Warehouse and district
// pack sequentially, so their span is exactly StaticPages. Growing
// relations return 0: their pages are numbered dynamically as they appear.
func (c Config) PackedPageSpan(r core.Relation) int64 {
	tpp := c.TuplesPerPage(r)
	var groups, group int64
	switch r {
	case core.Warehouse, core.District:
		return c.StaticPages(r)
	case core.Customer:
		groups, group = int64(c.Warehouses)*DistrictsPerWarehouse, CustomersPerDistrict
	case core.Stock:
		groups, group = int64(c.Warehouses), StockPerWarehouse
	case core.Item:
		groups, group = 1, ItemCount
	default:
		return 0
	}
	return groups * ((group + tpp - 1) / tpp)
}

// PageOrdinalBases lays the statically sized relations out in one flat,
// contiguous page-ordinal space: relation r owns ordinals
// [bases[r], bases[r]+PackedPageSpan(r)) in Table 1 order, and staticTotal
// is one past the last static ordinal. Growing relations get base -1 —
// their pages receive ordinals from staticTotal upward in first-appearance
// order. This is the static-knowledge property the paper exploits: because
// the TPC-C page universe is known a priori from the schema, the buffer
// kernel can replace hash tables with flat arrays indexed by ordinal.
func (c Config) PageOrdinalBases() (bases [core.NumRelations]int64, staticTotal int64) {
	for _, r := range core.Relations() {
		if span := c.PackedPageSpan(r); span > 0 {
			bases[r] = staticTotal
			staticTotal += span
		} else {
			bases[r] = -1
		}
	}
	return bases, staticTotal
}

// StaticBytes returns the page-granular storage in bytes for the statically
// sized relations.
func (c Config) StaticBytes() int64 {
	var total int64
	for _, r := range core.Relations() {
		total += c.StaticPages(r) * int64(c.PageSize)
	}
	return total
}

// GrowthBytesPerNewOrder returns the storage appended per New-Order
// transaction plus the share of History appended by the accompanying
// Payment transactions, given the workload mix: each New-Order inserts one
// order tuple and ten order-line tuples, and each Payment inserts one
// history tuple. This matches the paper's 180-day sizing argument in
// Section 5.2.
func GrowthBytesPerNewOrder(mix Mix) float64 {
	perNewOrder := float64(TupleLen[core.Order]) + 10*float64(TupleLen[core.OrderLine])
	paymentsPerNewOrder := mix.Fraction(core.TxnPayment) / mix.Fraction(core.TxnNewOrder)
	return perNewOrder + paymentsPerNewOrder*float64(TupleLen[core.History])
}

// Mix is the workload mix: the fraction of transactions of each type.
type Mix [core.NumTxnTypes]float64

// DefaultMix returns the paper's assumed mix (Table 2): 43% New-Order,
// 44% Payment, 4% Order-Status, 5% Delivery, 4% Stock-Level. Delivery is
// held at 5% so the New-Order relation drains (each Delivery removes ten
// pending orders, so 0.05*10 = 0.5 > 0.43 inserted).
func DefaultMix() Mix {
	return Mix{
		core.TxnNewOrder:    0.43,
		core.TxnPayment:     0.44,
		core.TxnOrderStatus: 0.04,
		core.TxnDelivery:    0.05,
		core.TxnStockLevel:  0.04,
	}
}

// MinimumMix returns the benchmark's minimum percentages (Table 2) with the
// New-Order share absorbing the remainder: 45/43/4/4/4.
func MinimumMix() Mix {
	return Mix{
		core.TxnNewOrder:    0.45,
		core.TxnPayment:     0.43,
		core.TxnOrderStatus: 0.04,
		core.TxnDelivery:    0.04,
		core.TxnStockLevel:  0.04,
	}
}

// Validate checks that the mix sums to 1 (within rounding) and is
// non-negative.
func (m Mix) Validate() error {
	var sum float64
	for t, f := range m {
		if f < 0 {
			return fmt.Errorf("tpcc: mix fraction for %s is negative", core.TxnType(t))
		}
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("tpcc: mix sums to %.4f, want 1.0", sum)
	}
	return nil
}

// Fraction returns the fraction of transactions of type t.
func (m Mix) Fraction(t core.TxnType) float64 { return m[t] }

// Drains reports whether the New-Order relation drains under this mix:
// Delivery removes up to ten pending orders per transaction while each
// New-Order inserts one, so the relation stays bounded iff
// 10*f(Delivery) >= f(NewOrder). The paper warns that 45% New-Order with
// 4% Delivery grows without bound.
func (m Mix) Drains() bool {
	return 10*m[core.TxnDelivery] >= m[core.TxnNewOrder]
}

// Behavioral constants of the transaction definitions (Section 2.2).
const (
	// ItemsPerOrder is the fixed order size the paper assumes (the
	// benchmark draws uniform 5..15 with mean 10; the paper fixes 10).
	ItemsPerOrder = 10
	// RemoteStockProb is the probability that one ordered item is
	// supplied by a remote warehouse.
	RemoteStockProb = 0.01
	// RemotePaymentProb is the probability a Payment is made through a
	// warehouse other than the customer's home warehouse.
	RemotePaymentProb = 0.15
	// PayByNameProb is the probability the customer is selected by last
	// name (returning three tuples on average) rather than by id.
	PayByNameProb = 0.60
	// PaymentMinCents/PaymentMaxCents bound the Payment amount: the
	// benchmark draws uniformly from [$1.00, $5000.00] (clause 2.5.1.1).
	PaymentMinCents = 100
	PaymentMaxCents = 500000
	// AvgTuplesPerNameSelect is the mean number of customer tuples
	// qualifying for a select-by-name.
	AvgTuplesPerNameSelect = 3
	// StockLevelOrders is the number of recent orders per district
	// examined by the Stock-Level transaction.
	StockLevelOrders = 20
	// DeliveriesPerTxn is the number of districts (hence orders)
	// processed by one Delivery transaction.
	DeliveriesPerTxn = DistrictsPerWarehouse
)
