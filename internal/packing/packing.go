// Package packing maps logical tuple ordinals to page ordinals, modeling the
// paper's Section 3 tuple-to-page packing strategies:
//
//   - Sequential: tuples are loaded in key order, TuplesPerPage whole tuples
//     per page (the remainder of each page is wasted). This spreads hot
//     tuples across all pages of the relation.
//   - Optimized: tuples are first sorted from hottest to coldest by their a
//     priori access probability and then packed in that order, clustering
//     hot tuples into the same pages. The paper shows this recovers the
//     tuple-level skew at the page level.
//   - Shuffled: a seeded random permutation, as a control.
//
// TPC-C relations that scale with warehouses repeat the same access
// distribution in every group (every warehouse's stock, every district's
// customers), so mappers operate on groups: a tuple ordinal is decomposed
// into (group, offset) and the within-group layout is shared.
package packing

import (
	"fmt"
	"sort"

	"tpccmodel/internal/rng"
)

// Mapper maps a zero-based tuple ordinal within a relation to a zero-based
// page ordinal within that relation.
type Mapper interface {
	// Page returns the page ordinal holding the tuple.
	Page(tuple int64) int64
	// Name identifies the strategy for reports.
	Name() string
}

// Sequential packs tuples in key order, perPage whole tuples per page. It
// also serves the append-only relations (order, order-line, history,
// new-order), whose tuple ordinals increase monotonically.
type Sequential struct {
	perPage int64
}

// NewSequential returns a sequential mapper; perPage must be positive.
func NewSequential(perPage int64) *Sequential {
	if perPage <= 0 {
		panic("packing: perPage must be positive")
	}
	return &Sequential{perPage: perPage}
}

// Page implements Mapper.
func (s *Sequential) Page(tuple int64) int64 { return tuple / s.perPage }

// Name implements Mapper.
func (s *Sequential) Name() string { return "sequential" }

// Grouped applies a shared within-group tuple permutation to every
// fixed-size group of the relation, then packs sequentially. Group g
// occupies pages [g*pagesPerGroup, (g+1)*pagesPerGroup).
type Grouped struct {
	name          string
	groupSize     int64
	perPage       int64
	pagesPerGroup int64
	// slot[offset] is the packed position of within-group ordinal offset.
	slot []int32
}

// Page implements Mapper.
func (g *Grouped) Page(tuple int64) int64 {
	group := tuple / g.groupSize
	off := tuple % g.groupSize
	return group*g.pagesPerGroup + int64(g.slot[off])/g.perPage
}

// Name implements Mapper.
func (g *Grouped) Name() string { return g.name }

// PagesPerGroup returns how many pages one group occupies.
func (g *Grouped) PagesPerGroup() int64 { return g.pagesPerGroup }

func newGrouped(name string, groupSize, perPage int64) *Grouped {
	if groupSize <= 0 || perPage <= 0 {
		panic("packing: groupSize and perPage must be positive")
	}
	return &Grouped{
		name:          name,
		groupSize:     groupSize,
		perPage:       perPage,
		pagesPerGroup: (groupSize + perPage - 1) / perPage,
		slot:          make([]int32, groupSize),
	}
}

// NewOptimized builds the paper's optimized packing for a relation whose
// within-group access probabilities are pmf (length = group size): tuples
// are sorted hottest-first and packed in that order. Ties are broken by
// ordinal for determinism.
func NewOptimized(pmf []float64, perPage int64) *Grouped {
	g := newGrouped("optimized", int64(len(pmf)), perPage)
	order := make([]int32, len(pmf))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return pmf[order[a]] > pmf[order[b]]
	})
	for pos, ord := range order {
		g.slot[ord] = int32(pos)
	}
	return g
}

// NewShuffled builds a seeded random within-group permutation, as a control
// against accidental alignment between key order and hotness.
func NewShuffled(groupSize, perPage int64, seed uint64) *Grouped {
	g := newGrouped("shuffled", groupSize, perPage)
	perm := make([]int64, groupSize)
	rng.New(seed).Perm(perm)
	for ord, pos := range perm {
		g.slot[ord] = int32(pos)
	}
	return g
}

// NewGroupedSequential builds a grouped mapper with the identity
// within-group layout. It is equivalent to Sequential when the group size
// is a multiple of perPage, but keeps groups page-aligned otherwise (each
// warehouse's stock starts on a fresh page), matching how a DBMS would lay
// out per-warehouse partitions.
func NewGroupedSequential(groupSize, perPage int64) *Grouped {
	g := newGrouped("sequential", groupSize, perPage)
	for i := range g.slot {
		g.slot[i] = int32(i)
	}
	return g
}

// PagePMF aggregates a within-group tuple PMF to the page level under the
// given mapper restricted to one group: out[p] is the total access
// probability of page p. Used for the Figure 5/7 page-level skew curves.
func PagePMF(pmf []float64, m Mapper) []float64 {
	var maxPage int64 = -1
	pages := make(map[int64]float64, len(pmf))
	for i, p := range pmf {
		pg := m.Page(int64(i))
		pages[pg] += p
		if pg > maxPage {
			maxPage = pg
		}
	}
	out := make([]float64, maxPage+1)
	for pg, p := range pages {
		out[pg] = p
	}
	return out
}

// Validate checks that a grouped mapper's within-group layout is a
// bijection, returning an error naming the first duplicate slot found.
func (g *Grouped) Validate() error {
	seen := make([]bool, g.groupSize)
	for ord, pos := range g.slot {
		if pos < 0 || int64(pos) >= g.groupSize {
			return fmt.Errorf("packing: ordinal %d maps to out-of-range slot %d", ord, pos)
		}
		if seen[pos] {
			return fmt.Errorf("packing: slot %d assigned twice", pos)
		}
		seen[pos] = true
	}
	return nil
}
