package packing

import (
	"math"
	"testing"
	"testing/quick"

	"tpccmodel/internal/nurand"
	"tpccmodel/internal/stats"
)

func TestSequentialMapping(t *testing.T) {
	s := NewSequential(13)
	cases := []struct{ tuple, page int64 }{
		{0, 0}, {12, 0}, {13, 1}, {25, 1}, {26, 2}, {129999, 9999},
	}
	for _, c := range cases {
		if got := s.Page(c.tuple); got != c.page {
			t.Errorf("Page(%d) = %d, want %d", c.tuple, got, c.page)
		}
	}
	if s.Name() != "sequential" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestGroupedSequentialAlignsGroups(t *testing.T) {
	// Groups of 30 tuples, 7 per page -> 5 pages per group (ceil 30/7),
	// each group page-aligned.
	g := NewGroupedSequential(30, 7)
	if g.PagesPerGroup() != 5 {
		t.Fatalf("PagesPerGroup = %d, want 5", g.PagesPerGroup())
	}
	if got := g.Page(0); got != 0 {
		t.Errorf("first tuple page = %d", got)
	}
	if got := g.Page(29); got != 4 {
		t.Errorf("last tuple of group 0 page = %d, want 4", got)
	}
	if got := g.Page(30); got != 5 {
		t.Errorf("first tuple of group 1 page = %d, want 5", got)
	}
}

func TestOptimizedPacksHottestFirst(t *testing.T) {
	// Hotness increases with ordinal: optimized layout must reverse.
	pmf := []float64{0.1, 0.2, 0.3, 0.4}
	g := NewOptimized(pmf, 2)
	// Hottest two tuples (ordinals 3, 2) share page 0.
	if g.Page(3) != 0 || g.Page(2) != 0 {
		t.Errorf("hot tuples on pages %d,%d, want 0,0", g.Page(3), g.Page(2))
	}
	if g.Page(1) != 1 || g.Page(0) != 1 {
		t.Errorf("cold tuples on pages %d,%d, want 1,1", g.Page(1), g.Page(0))
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestOptimizedTieBreakDeterministic(t *testing.T) {
	pmf := []float64{0.25, 0.25, 0.25, 0.25}
	a, b := NewOptimized(pmf, 2), NewOptimized(pmf, 2)
	for i := int64(0); i < 4; i++ {
		if a.Page(i) != b.Page(i) {
			t.Fatal("optimized packing must be deterministic under ties")
		}
	}
	// Stable sort on equal keys preserves ordinal order = sequential.
	for i := int64(0); i < 4; i++ {
		if a.Page(i) != i/2 {
			t.Errorf("uniform pmf should degenerate to sequential; Page(%d)=%d", i, a.Page(i))
		}
	}
}

func TestShuffledIsBijection(t *testing.T) {
	f := func(seed uint64) bool {
		g := NewShuffled(100, 7, seed)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGroupedMappersShareLayoutAcrossGroups(t *testing.T) {
	pmf := make([]float64, 50)
	for i := range pmf {
		pmf[i] = float64(i + 1)
	}
	g := NewOptimized(pmf, 10)
	ppg := g.PagesPerGroup()
	for i := int64(0); i < 50; i++ {
		if g.Page(i+50) != g.Page(i)+ppg {
			t.Fatalf("group 1 must mirror group 0 shifted by %d pages", ppg)
		}
	}
}

func TestPagePMFAggregates(t *testing.T) {
	pmf := []float64{0.1, 0.2, 0.3, 0.4}
	seq := NewGroupedSequential(4, 2)
	pp := PagePMF(pmf, seq)
	if len(pp) != 2 {
		t.Fatalf("page pmf length = %d, want 2", len(pp))
	}
	if math.Abs(pp[0]-0.3) > 1e-12 || math.Abs(pp[1]-0.7) > 1e-12 {
		t.Errorf("page pmf = %v, want [0.3, 0.7]", pp)
	}
}

// TestOptimizedRecoversTupleSkew reproduces the paper's core Section 3
// finding: sequential packing dilutes skew at the page level, while
// optimized (hotness-sorted) packing makes the page-level Lorenz curve
// nearly identical to the tuple-level curve.
func TestOptimizedRecoversTupleSkew(t *testing.T) {
	p := nurand.Params{A: 255, X: 1, Y: 3000}
	pmf := nurand.ExactPMF(p)
	const perPage = 13

	tupleShare := stats.NewLorenz(pmf).AccessShareOfHottest(0.20)

	seqPP := PagePMF(pmf, NewGroupedSequential(int64(len(pmf)), perPage))
	seqShare := stats.NewLorenz(seqPP).AccessShareOfHottest(0.20)

	optPP := PagePMF(pmf, NewOptimized(pmf, perPage))
	optShare := stats.NewLorenz(optPP).AccessShareOfHottest(0.20)

	if !(seqShare < tupleShare) {
		t.Errorf("sequential page share %.3f should be below tuple share %.3f", seqShare, tupleShare)
	}
	if math.Abs(optShare-tupleShare) > 0.02 {
		t.Errorf("optimized page share %.3f should track tuple share %.3f", optShare, tupleShare)
	}
}

// TestSmallerPagesMoreSkew verifies the paper's observation that a smaller
// page size preserves more of the tuple-level skew under sequential packing.
func TestSmallerPagesMoreSkew(t *testing.T) {
	p := nurand.Params{A: 255, X: 1, Y: 3000}
	pmf := nurand.ExactPMF(p)
	small := PagePMF(pmf, NewGroupedSequential(int64(len(pmf)), 13)) // "4K"
	large := PagePMF(pmf, NewGroupedSequential(int64(len(pmf)), 26)) // "8K"
	sSmall := stats.NewLorenz(small).AccessShareOfHottest(0.20)
	sLarge := stats.NewLorenz(large).AccessShareOfHottest(0.20)
	if !(sSmall > sLarge) {
		t.Errorf("4K-page skew (%.3f) should exceed 8K-page skew (%.3f)", sSmall, sLarge)
	}
}

// TestOptimizedInsensitiveToPageSize verifies the paper's note that the
// optimized packing's page-level skew is insensitive to page size.
func TestOptimizedInsensitiveToPageSize(t *testing.T) {
	p := nurand.Params{A: 255, X: 1, Y: 3000}
	pmf := nurand.ExactPMF(p)
	s13 := stats.NewLorenz(PagePMF(pmf, NewOptimized(pmf, 13))).AccessShareOfHottest(0.20)
	s26 := stats.NewLorenz(PagePMF(pmf, NewOptimized(pmf, 26))).AccessShareOfHottest(0.20)
	if math.Abs(s13-s26) > 0.02 {
		t.Errorf("optimized packing page-size sensitivity: %.3f vs %.3f", s13, s26)
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"seq zero perPage":   func() { NewSequential(0) },
		"grouped zero group": func() { NewGroupedSequential(0, 5) },
		"grouped zero page":  func() { NewGroupedSequential(5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
