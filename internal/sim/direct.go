package sim

import (
	"fmt"

	"tpccmodel/internal/buffer"
	"tpccmodel/internal/core"
	"tpccmodel/internal/stats"
	"tpccmodel/internal/workload"
)

// Config parameterizes a direct fixed-capacity simulation with a concrete
// replacement policy.
type Config struct {
	// Workload is the reference-stream configuration.
	Workload workload.Config
	// Packing is the tuple-to-page strategy.
	Packing Packing
	// Policy is a buffer.NewPolicy name ("lru", "clock", "2q", ...).
	Policy string
	// BufferPages is the pool capacity in pages.
	BufferPages int64
	// WarmupTxns are run before measurement starts.
	WarmupTxns int64
	// Batches and BatchTxns configure batch means.
	Batches   int
	BatchTxns int64
	// Level is the confidence level (paper: 0.90).
	Level float64
	// Trace, when non-nil, is replayed instead of running the workload
	// generator (see CurveConfig.Trace).
	Trace *Trace
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.BufferPages <= 0 {
		return fmt.Errorf("sim: buffer pages must be positive")
	}
	if c.Batches < 2 || c.BatchTxns <= 0 {
		return fmt.Errorf("sim: need >= 2 batches of positive size")
	}
	if c.Level <= 0 || c.Level >= 1 {
		return fmt.Errorf("sim: confidence level %v out of (0,1)", c.Level)
	}
	if want := c.WarmupTxns + int64(c.Batches)*c.BatchTxns; c.Trace != nil && c.Trace.Txns() < want {
		return fmt.Errorf("sim: trace holds %d transactions, need %d", c.Trace.Txns(), want)
	}
	return nil
}

// RelStats reports one relation's buffer behaviour.
type RelStats struct {
	Accesses int64
	Misses   int64
	// CI is the batch-means confidence interval of the miss rate; its
	// Mean is the grand mean over batches.
	CI stats.Interval
}

// MissRate returns misses/accesses (0 when the relation is untouched).
func (s RelStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Result holds the outputs of Run.
type Result struct {
	Policy      string
	BufferPages int64
	PerRelation [core.NumRelations]RelStats
	Overall     RelStats
}

// Run executes the direct simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	next, err := newTxnSource(cfg.Workload, cfg.Trace)
	if err != nil {
		return nil, err
	}
	pool, err := buffer.NewPolicy(cfg.Policy, cfg.BufferPages)
	if err != nil {
		return nil, err
	}
	mappers := BuildMappers(cfg.Workload.DB, cfg.Packing, cfg.Workload.Seed)

	res := &Result{Policy: cfg.Policy, BufferPages: cfg.BufferPages}
	var bm [core.NumRelations]*stats.BatchMeans
	for rel := range bm {
		bm[rel] = stats.NewBatchMeans(1)
	}
	overallBM := stats.NewBatchMeans(1)

	var txn workload.Txn
	for i := int64(0); i < cfg.WarmupTxns; i++ {
		next(&txn)
		for _, a := range txn.Accesses {
			pool.Access(core.MakePageID(a.Rel, mappers[a.Rel].Page(a.Tuple)))
		}
	}

	for b := 0; b < cfg.Batches; b++ {
		var acc, miss [core.NumRelations]int64
		var accAll, missAll int64
		for i := int64(0); i < cfg.BatchTxns; i++ {
			next(&txn)
			for _, a := range txn.Accesses {
				page := core.MakePageID(a.Rel, mappers[a.Rel].Page(a.Tuple))
				hit := pool.Access(page)
				acc[a.Rel]++
				accAll++
				if !hit {
					miss[a.Rel]++
					missAll++
				}
			}
		}
		for rel := range acc {
			res.PerRelation[rel].Accesses += acc[rel]
			res.PerRelation[rel].Misses += miss[rel]
			if acc[rel] > 0 {
				bm[rel].Add(float64(miss[rel]) / float64(acc[rel]))
			}
		}
		res.Overall.Accesses += accAll
		res.Overall.Misses += missAll
		if accAll > 0 {
			overallBM.Add(float64(missAll) / float64(accAll))
		}
	}

	for rel := range bm {
		if iv, err := bm[rel].Interval(cfg.Level); err == nil {
			res.PerRelation[rel].CI = iv
		}
	}
	if iv, err := overallBM.Interval(cfg.Level); err == nil {
		res.Overall.CI = iv
	}
	return res, nil
}
