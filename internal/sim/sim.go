// Package sim drives the paper's Section 4 buffer simulation: the TPC-C
// reference stream from package workload is mapped to pages by a packing
// strategy and fed to a buffer model, producing per-relation miss rates
// with batch-means confidence intervals (the paper uses 30 batches and
// requires relative half-widths of at most 5% at the 90% level).
//
// Two drivers are provided:
//
//   - RunCurve: a single-pass LRU stack-distance simulation that yields the
//     exact miss-rate-vs-buffer-size curve for every relation at once —
//     this regenerates the paper's Figure 8 sweep in one run, and the
//     per-transaction-type miss rates the throughput model needs.
//   - Run: a direct fixed-capacity simulation with a pluggable replacement
//     policy, used to validate the stack simulation and for the paper's
//     "more sophisticated replacement policies" hypothesis.
package sim

import (
	"fmt"
	"sort"

	"tpccmodel/internal/buffer"
	"tpccmodel/internal/core"
	"tpccmodel/internal/nurand"
	"tpccmodel/internal/packing"
	"tpccmodel/internal/rng"
	"tpccmodel/internal/stats"
	"tpccmodel/internal/tpcc"
	"tpccmodel/internal/workload"
)

// Packing selects the tuple-to-page strategy of Section 3.
type Packing int

// Packing strategies.
const (
	// PackSequential loads tuples in key order (the paper's baseline).
	PackSequential Packing = iota
	// PackOptimized sorts tuples hottest-first before packing (the
	// paper's optimization; possible because TPC-C access probabilities
	// are static and known a priori).
	PackOptimized
	// PackShuffled packs tuples in random order (a control; the paper
	// notes sequential-or-random spreads hot tuples alike).
	PackShuffled
)

// String names the strategy.
func (p Packing) String() string {
	switch p {
	case PackSequential:
		return "sequential"
	case PackOptimized:
		return "optimized"
	case PackShuffled:
		return "shuffled"
	default:
		return fmt.Sprintf("packing(%d)", int(p))
	}
}

// ParsePacking parses "sequential", "optimized", or "shuffled".
func ParsePacking(s string) (Packing, error) {
	switch s {
	case "sequential":
		return PackSequential, nil
	case "optimized":
		return PackOptimized, nil
	case "shuffled":
		return PackShuffled, nil
	default:
		return 0, fmt.Errorf("sim: unknown packing %q", s)
	}
}

// Mappers holds one tuple-to-page mapper per relation.
type Mappers [core.NumRelations]packing.Mapper

// BuildMappers constructs the per-relation mappers for a database scale and
// packing strategy. Only the three NURand-skewed relations (customer,
// stock, item) differ between strategies; the warehouse/district relations
// are tiny and uniform, and the growing relations are append-ordered by
// construction, so all of those pack sequentially. Stock and item share
// the NU(8191,1,100000) hotness ranking; customer uses the paper's id/name
// access mixture.
func BuildMappers(db tpcc.Config, strategy Packing, seed uint64) Mappers {
	var m Mappers
	for _, r := range core.Relations() {
		perPage := db.TuplesPerPage(r)
		var group int64
		switch r {
		case core.Stock:
			group = tpcc.StockPerWarehouse
		case core.Item:
			group = tpcc.ItemCount
		case core.Customer:
			group = tpcc.CustomersPerDistrict
		default:
			m[r] = packing.NewSequential(perPage)
			continue
		}
		switch strategy {
		case PackOptimized:
			var pmf []float64
			if r == core.Customer {
				pmf = nurand.CustomerMixture().ExactPMF()
			} else {
				pmf = nurand.ExactPMF(nurand.ItemID)
			}
			m[r] = packing.NewOptimized(pmf, perPage)
		case PackShuffled:
			// Derive one shuffle substream per relation: arithmetic like
			// seed+r hands adjacent, correlated seeds to sibling mappers.
			m[r] = packing.NewShuffled(group, perPage, rng.Substream(seed, uint64(r)))
		default:
			m[r] = packing.NewGroupedSequential(group, perPage)
		}
	}
	return m
}

// PagesForBytes converts a buffer size in bytes to pages.
func PagesForBytes(bytes int64, pageSize int) int64 {
	if pageSize <= 0 {
		panic("sim: page size must be positive")
	}
	return bytes / int64(pageSize)
}

// CurveConfig parameterizes a stack-distance simulation.
type CurveConfig struct {
	// Workload is the reference-stream configuration.
	Workload workload.Config
	// Packing is the tuple-to-page strategy.
	Packing Packing
	// CapacitiesPages are the buffer sizes (in pages, ascending or not)
	// at which confidence intervals and per-transaction miss rates are
	// evaluated. Full-resolution curves are available regardless.
	CapacitiesPages []int64
	// WarmupTxns are run before measurement starts.
	WarmupTxns int64
	// Batches and BatchTxns configure batch means (paper: 30 batches).
	Batches   int
	BatchTxns int64
	// Level is the confidence level (paper: 0.90).
	Level float64
	// Trace, when non-nil, is replayed instead of running the workload
	// generator. It must hold at least WarmupTxns + Batches*BatchTxns
	// transactions of the configured workload; sweep drivers record it
	// once (see TraceCache) and share it across grid cells.
	Trace *Trace
	// Mapped, when non-nil, replays a pre-mapped trace (tuple-to-page
	// translation already applied; see Trace.MapPages) through the dense
	// allocation- and hash-free kernel. It takes precedence over Trace,
	// and Packing is ignored — the mapping already encodes it. Results are
	// identical to the Trace path bit for bit; the mapped engine is just
	// faster.
	Mapped *MappedTrace
}

// Validate checks the configuration.
func (c CurveConfig) Validate() error {
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if len(c.CapacitiesPages) == 0 {
		return fmt.Errorf("sim: need at least one evaluation capacity")
	}
	for _, cap := range c.CapacitiesPages {
		if cap <= 0 {
			return fmt.Errorf("sim: capacities must be positive, got %d", cap)
		}
	}
	if c.Batches < 2 || c.BatchTxns <= 0 {
		return fmt.Errorf("sim: need >= 2 batches of positive size")
	}
	if c.Level <= 0 || c.Level >= 1 {
		return fmt.Errorf("sim: confidence level %v out of (0,1)", c.Level)
	}
	want := c.WarmupTxns + int64(c.Batches)*c.BatchTxns
	if c.Mapped != nil {
		if c.Mapped.Txns() < want {
			return fmt.Errorf("sim: mapped trace holds %d transactions, need %d", c.Mapped.Txns(), want)
		}
	} else if c.Trace != nil && c.Trace.Txns() < want {
		return fmt.Errorf("sim: trace holds %d transactions, need %d", c.Trace.Txns(), want)
	}
	return nil
}

// txnSource yields successive transactions: either a live workload
// generator or a positional replay of a shared recorded trace.
type txnSource func(t *workload.Txn)

// newTxnSource builds the stream for a run: replaying tr when non-nil,
// generating from cfg otherwise.
func newTxnSource(cfg workload.Config, tr *Trace) (txnSource, error) {
	if tr != nil {
		var idx int64
		return func(t *workload.Txn) {
			tr.Replay(idx, t)
			idx++
		}, nil
	}
	gen, err := workload.New(cfg)
	if err != nil {
		return nil, err
	}
	return gen.Next, nil
}

// CurveResult holds the outputs of RunCurve.
type CurveResult struct {
	// Caps are the evaluation capacities, sorted ascending.
	Caps []int64
	// Curves are the full-resolution per-relation miss curves.
	Curves [core.NumRelations]*buffer.MissCurve
	// Overall is the full-resolution miss curve over all relations.
	Overall *buffer.MissCurve

	// batch-means accumulators per relation per capacity index.
	bm [core.NumRelations][]*stats.BatchMeans
	// global per-(txn,relation) access counts and hit counts by capacity.
	txnRelAcc  [core.NumTxnTypes][core.NumRelations]int64
	txnRelHits [core.NumTxnTypes][core.NumRelations][]int64
	// txnCounts are measured (post-warmup) transaction counts per type.
	txnCounts [core.NumTxnTypes]int64
	level     float64
}

// TxnCount returns the number of measured transactions of type t.
func (r *CurveResult) TxnCount(t core.TxnType) int64 { return r.txnCounts[t] }

// TxnIOs returns the measured mean number of physical page reads per
// transaction of type t at evaluation capacity index capIdx: the misses its
// accesses incur, over all relations. This is the model's per-transaction
// data-disk I/O count (the paper's "mc + 10(mi + ms)" terms, but measured
// per transaction type rather than approximated).
func (r *CurveResult) TxnIOs(t core.TxnType, capIdx int) float64 {
	n := r.txnCounts[t]
	if n == 0 {
		return 0
	}
	var misses int64
	for rel := range r.txnRelAcc[t] {
		misses += r.txnRelAcc[t][rel] - r.txnRelHits[t][rel][capIdx]
	}
	return float64(misses) / float64(n)
}

// MissRateCI returns the batch-means confidence interval of relation rel's
// miss rate at evaluation capacity index capIdx.
func (r *CurveResult) MissRateCI(rel core.Relation, capIdx int) (stats.Interval, error) {
	return r.bm[rel][capIdx].Interval(r.level)
}

// BatchDiagnostics returns the lag-1 autocorrelation of relation rel's
// per-batch miss rates at evaluation capacity index capIdx, and whether
// it sits within the white-noise band (batch-means CIs are only valid
// when batches are approximately independent; a failing diagnostic calls
// for a larger BatchTxns).
func (r *CurveResult) BatchDiagnostics(rel core.Relation, capIdx int) (lag1 float64, independent bool) {
	bm := r.bm[rel][capIdx]
	return bm.Lag1Autocorrelation(), bm.BatchesIndependent()
}

// MissRate returns relation rel's overall miss rate at an arbitrary
// capacity in pages (full resolution, no CI).
func (r *CurveResult) MissRate(rel core.Relation, capacityPages int64) float64 {
	return r.Curves[rel].MissRate(capacityPages)
}

// TxnRelMissRate returns the miss rate of transaction type t's accesses to
// relation rel at evaluation capacity index capIdx — the paper's
// "miss rates for the accesses by the Order-Status, Delivery, and
// Stock-Level transactions in isolation", used by the throughput model.
// Returns 0 when the transaction never touches the relation.
func (r *CurveResult) TxnRelMissRate(t core.TxnType, rel core.Relation, capIdx int) float64 {
	acc := r.txnRelAcc[t][rel]
	if acc == 0 {
		return 0
	}
	return 1 - float64(r.txnRelHits[t][rel][capIdx])/float64(acc)
}

// TxnRelAccesses returns how many accesses transaction type t made to
// relation rel during measurement.
func (r *CurveResult) TxnRelAccesses(t core.TxnType, rel core.Relation) int64 {
	return r.txnRelAcc[t][rel]
}

// RelAccesses returns the total measured accesses to relation rel across
// all transaction types.
func (r *CurveResult) RelAccesses(rel core.Relation) int64 {
	var n int64
	for t := range r.txnRelAcc {
		n += r.txnRelAcc[t][rel]
	}
	return n
}

// RunCurve runs the single-pass stack-distance simulation. Two replay
// engines produce bit-identical results:
//
//   - the seed kernel (Trace or live generator): map-based StackSim,
//     per-access tuple-to-page mapping, binary-searched capacity buckets.
//     Retained as the benchmark baseline and differential-testing oracle.
//   - the dense kernel (Mapped): pre-translated flat page ordinals fed to
//     DenseStackSim, an O(1) distance-to-capacity lookup table, and
//     per-relation-only accumulation with Overall merged at the end. The
//     per-access path allocates nothing and hashes nothing.
//
// All returned curves are finalized: MissRate reads are O(1) and safe for
// concurrent use by the sweep drivers.
func RunCurve(cfg CurveConfig) (*CurveResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	caps := append([]int64(nil), cfg.CapacitiesPages...)
	sort.Slice(caps, func(i, j int) bool { return caps[i] < caps[j] })
	ncap := len(caps)

	res := &CurveResult{Caps: caps, Overall: &buffer.MissCurve{}, level: cfg.Level}
	for rel := range res.Curves {
		res.Curves[rel] = &buffer.MissCurve{}
		res.bm[rel] = make([]*stats.BatchMeans, ncap)
		for i := range res.bm[rel] {
			// Each batch contributes one sample (its miss rate).
			res.bm[rel][i] = stats.NewBatchMeans(1)
		}
	}
	for t := range res.txnRelHits {
		for rel := range res.txnRelHits[t] {
			res.txnRelHits[t][rel] = make([]int64, ncap)
		}
	}

	var err error
	if cfg.Mapped != nil {
		err = runCurveMapped(cfg, res, caps)
	} else {
		err = runCurveSeed(cfg, res, caps)
	}
	if err != nil {
		return nil, err
	}

	for rel := range res.Curves {
		res.Curves[rel].Finalize()
	}
	res.Overall.Finalize()
	return res, nil
}

// addBatchMeans folds one batch's hitFrom counters into the per-capacity
// batch-means accumulators: hits at caps[i] = sum of hitFrom[0..i]
// (distance <= caps[i]). Shared by both engines so the floating-point
// arithmetic is literally the same code.
func (r *CurveResult) addBatchMeans(batchAcc *[core.NumRelations]int64, batchHitFrom [][core.NumRelations]int64) {
	var cum [core.NumRelations]int64
	for i := 0; i < len(r.Caps); i++ {
		for rel := range cum {
			cum[rel] += batchHitFrom[i][rel]
			if batchAcc[rel] > 0 {
				r.bm[rel][i].Add(1 - float64(cum[rel])/float64(batchAcc[rel]))
			}
		}
	}
}

// foldTxnRelHits converts the global per-(txn,rel) hitFrom counters into
// cumulative hits per capacity.
func (r *CurveResult) foldTxnRelHits(txnRelHitFrom [][core.NumTxnTypes][core.NumRelations]int64) {
	for t := range r.txnRelHits {
		for rel := range r.txnRelHits[t] {
			var cum int64
			for i := 0; i < len(r.Caps); i++ {
				cum += txnRelHitFrom[i][core.TxnType(t)][rel]
				r.txnRelHits[t][rel][i] = cum
			}
		}
	}
}

// runCurveSeed is the original per-access kernel: tuple stream (generated
// or replayed), mapper call and PageID construction per access, map-based
// stack simulator, binary search per hit. Deliberately untouched by the
// dense-kernel optimization so it can serve as its oracle and baseline.
func runCurveSeed(cfg CurveConfig, res *CurveResult, caps []int64) error {
	next, err := newTxnSource(cfg.Workload, cfg.Trace)
	if err != nil {
		return err
	}
	mappers := BuildMappers(cfg.Workload.DB, cfg.Packing, cfg.Workload.Seed)
	ncap := len(caps)

	stack := buffer.NewStackSim()
	var txn workload.Txn

	// hitFrom[idx] counts accesses whose smallest sufficient capacity is
	// caps[idx]; suffix sums convert to hits at each capacity.
	capIndex := func(d int64) int {
		// First capacity >= d.
		return sort.Search(ncap, func(i int) bool { return caps[i] >= d })
	}

	for i := int64(0); i < cfg.WarmupTxns; i++ {
		next(&txn)
		for _, a := range txn.Accesses {
			stack.Access(core.MakePageID(a.Rel, mappers[a.Rel].Page(a.Tuple)))
		}
	}

	var batchAcc [core.NumRelations]int64
	batchHitFrom := make([][core.NumRelations]int64, ncap+1)
	txnRelHitFrom := make([][core.NumTxnTypes][core.NumRelations]int64, ncap+1)

	for b := 0; b < cfg.Batches; b++ {
		for rel := range batchAcc {
			batchAcc[rel] = 0
		}
		for i := range batchHitFrom {
			batchHitFrom[i] = [core.NumRelations]int64{}
		}
		for i := int64(0); i < cfg.BatchTxns; i++ {
			next(&txn)
			res.txnCounts[txn.Type]++
			for _, a := range txn.Accesses {
				page := core.MakePageID(a.Rel, mappers[a.Rel].Page(a.Tuple))
				d := stack.Access(page)
				res.Curves[a.Rel].Add(d)
				res.Overall.Add(d)
				batchAcc[a.Rel]++
				res.txnRelAcc[txn.Type][a.Rel]++
				if d != buffer.ColdDistance {
					idx := capIndex(d)
					if idx < ncap {
						batchHitFrom[idx][a.Rel]++
						txnRelHitFrom[idx][txn.Type][a.Rel]++
					}
				}
			}
		}
		res.addBatchMeans(&batchAcc, batchHitFrom)
	}
	res.foldTxnRelHits(txnRelHitFrom)
	return nil
}

// runCurveMapped is the dense kernel: it replays pre-translated flat page
// ordinals (Trace.MapPages) through DenseStackSim. Per access it performs
// one slice load for the ordinal, the two Fenwick walks, one table lookup
// for the capacity bucket, and one per-relation MissCurve.Add — no map
// probe, no PageID construction, no binary search, no transaction-struct
// rebuild, no second Add for the overall curve (Overall is merged from the
// per-relation curves afterwards, which yields identical counts).
func runCurveMapped(cfg CurveConfig, res *CurveResult, caps []int64) error {
	mt := cfg.Mapped
	tr := mt.trace
	ncap := len(caps)

	// O(1) distance-to-capacity-index lookup: lut[d] is the index of the
	// smallest capacity >= d for d in [1, maxCap]; larger distances miss
	// everywhere. Matches sort.Search on the sorted caps by construction.
	maxCap := caps[ncap-1]
	lut := make([]int32, maxCap+1)
	idx := int32(0)
	for d := int64(1); d <= maxCap; d++ {
		for caps[idx] < d {
			idx++
		}
		lut[d] = idx
	}

	dense := buffer.NewDenseStackSim(mt.universe)
	pages := mt.pages
	rels := tr.rels

	var k int64 // global access cursor
	if cfg.WarmupTxns > 0 {
		// Warmup touches the stack simulator only; no per-transaction
		// structure is needed.
		for end := tr.ends[cfg.WarmupTxns-1]; k < end; k++ {
			dense.Access(int64(pages[k]))
		}
	}

	var batchAcc [core.NumRelations]int64
	batchHitFrom := make([][core.NumRelations]int64, ncap+1)
	txnRelHitFrom := make([][core.NumTxnTypes][core.NumRelations]int64, ncap+1)

	txnIdx := cfg.WarmupTxns
	for b := 0; b < cfg.Batches; b++ {
		for rel := range batchAcc {
			batchAcc[rel] = 0
		}
		for i := range batchHitFrom {
			batchHitFrom[i] = [core.NumRelations]int64{}
		}
		for i := int64(0); i < cfg.BatchTxns; i++ {
			typ := tr.types[txnIdx]
			res.txnCounts[typ]++
			for end := tr.ends[txnIdx]; k < end; k++ {
				rel := rels[k]
				d := dense.Access(int64(pages[k]))
				res.Curves[rel].Add(d)
				batchAcc[rel]++
				res.txnRelAcc[typ][rel]++
				if d != buffer.ColdDistance && d <= maxCap {
					idx := lut[d]
					batchHitFrom[idx][rel]++
					txnRelHitFrom[idx][typ][rel]++
				}
			}
			txnIdx++
		}
		res.addBatchMeans(&batchAcc, batchHitFrom)
	}
	res.foldTxnRelHits(txnRelHitFrom)

	for rel := range res.Curves {
		res.Overall.Merge(res.Curves[rel])
	}
	return nil
}
