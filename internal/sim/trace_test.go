package sim

import (
	"reflect"
	"sync"
	"testing"

	"tpccmodel/internal/workload"
)

// TestTraceReplayMatchesGenerator: replaying a recorded trace must reproduce
// the generator's transaction stream exactly — same types, same accesses, in
// the same order.
func TestTraceReplayMatchesGenerator(t *testing.T) {
	cfg := workload.DefaultConfig(1, 7)
	const txns = 2000
	tr, err := RecordTrace(cfg, txns)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Txns() != txns {
		t.Fatalf("Txns() = %d, want %d", tr.Txns(), txns)
	}
	gen, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want, got workload.Txn
	var accs int64
	for i := int64(0); i < txns; i++ {
		gen.Next(&want)
		tr.Replay(i, &got)
		if got.Type != want.Type {
			t.Fatalf("txn %d: type %v, want %v", i, got.Type, want.Type)
		}
		if len(got.Accesses) != len(want.Accesses) {
			t.Fatalf("txn %d: %d accesses, want %d", i, len(got.Accesses), len(want.Accesses))
		}
		for k := range want.Accesses {
			if got.Accesses[k].Rel != want.Accesses[k].Rel ||
				got.Accesses[k].Tuple != want.Accesses[k].Tuple {
				t.Fatalf("txn %d access %d: %+v, want %+v", i, k, got.Accesses[k], want.Accesses[k])
			}
		}
		accs += int64(len(want.Accesses))
	}
	if tr.Accesses() != accs {
		t.Fatalf("Accesses() = %d, want %d", tr.Accesses(), accs)
	}
}

// TestTraceReplayRandomOrder: replay is positional, so any index may be
// replayed at any time and repeatedly into a reused Txn.
func TestTraceReplayRandomOrder(t *testing.T) {
	cfg := workload.DefaultConfig(1, 9)
	tr, err := RecordTrace(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	var a, b workload.Txn
	for _, i := range []int64{99, 0, 42, 0, 99} {
		tr.Replay(i, &a)
		tr.Replay(i, &b)
		if a.Type != b.Type || !reflect.DeepEqual(a.Accesses, b.Accesses) {
			t.Fatalf("replay of txn %d is not stable", i)
		}
	}
}

// TestRunCurveWithTraceMatchesGenerated: a curve run fed a recorded trace
// must produce identical results to one that generates the stream itself —
// the core guarantee that lets sweep cells share one recording.
func TestRunCurveWithTraceMatchesGenerated(t *testing.T) {
	base := smallCurveConfig(1, PackSequential)
	base.WarmupTxns, base.Batches, base.BatchTxns = 500, 3, 500

	direct, err := RunCurve(base)
	if err != nil {
		t.Fatal(err)
	}

	traced := base
	tr, err := RecordTrace(base.Workload, base.WarmupTxns+int64(base.Batches)*base.BatchTxns)
	if err != nil {
		t.Fatal(err)
	}
	traced.Trace = tr
	replayed, err := RunCurve(traced)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, replayed) {
		t.Error("trace-fed curve differs from generator-fed curve")
	}
}

// TestCurveConfigRejectsShortTrace: a trace shorter than warmup+measured
// transactions must fail validation instead of panicking mid-run.
func TestCurveConfigRejectsShortTrace(t *testing.T) {
	cfg := smallCurveConfig(1, PackSequential)
	cfg.WarmupTxns, cfg.Batches, cfg.BatchTxns = 500, 3, 500
	tr, err := RecordTrace(cfg.Workload, 100)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = tr
	if _, err := RunCurve(cfg); err == nil {
		t.Error("short trace accepted")
	}
}

// TestTraceCacheMemoizes: same key returns the same *Trace; concurrent
// requests record exactly once; different page sizes share (the stream is
// page-size independent) while different seeds or lengths do not.
func TestTraceCacheMemoizes(t *testing.T) {
	c := NewTraceCache()
	cfg := workload.DefaultConfig(1, 11)

	const goroutines = 8
	got := make([]*Trace, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer wg.Done()
			tr, err := c.Get(cfg, 200)
			if err != nil {
				t.Error(err)
			}
			got[i] = tr
		}()
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent Gets returned different traces for one key")
		}
	}

	cfg8k := cfg
	cfg8k.DB.PageSize = 8192
	shared, err := c.Get(cfg8k, 200)
	if err != nil {
		t.Fatal(err)
	}
	if shared != got[0] {
		t.Error("page size should not split the trace key")
	}

	cfgSeed := cfg
	cfgSeed.Seed = 12
	other, err := c.Get(cfgSeed, 200)
	if err != nil {
		t.Fatal(err)
	}
	longer, err := c.Get(cfg, 300)
	if err != nil {
		t.Fatal(err)
	}
	if other == got[0] || longer == got[0] {
		t.Error("distinct seed or length must yield a distinct trace")
	}
	if longer.Txns() != 300 {
		t.Errorf("longer trace has %d txns, want 300", longer.Txns())
	}
}
