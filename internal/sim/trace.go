// Shared reference traces. Every cell of a sweep grid (packing x policy x
// buffer size) consumes the same logical tuple stream: the stream depends
// only on the workload configuration and seed, not on how tuples are packed
// into pages or which replacement policy manages the pool. Recording the
// stream once per (seed, scale) and replaying it into each cell avoids
// regenerating it per cell and guarantees every cell sees byte-identical
// input no matter which worker runs it.
package sim

import (
	"fmt"
	"math"
	"sync"

	"tpccmodel/internal/core"
	"tpccmodel/internal/workload"
)

// Trace is a recorded reference stream: a sequence of transactions flattened
// into parallel arrays. It is immutable after recording and safe for
// concurrent replay.
type Trace struct {
	types []core.TxnType // per-transaction type
	ends  []int64        // ends[i] = offset one past txn i's last access
	rels  []core.Relation
	// tuples holds tuple ordinals as int32: the largest ordinal any
	// supported configuration reaches (order-lines after millions of
	// transactions) sits far below 2^31; RecordTrace checks anyway.
	tuples []int32
}

// Txns returns the number of recorded transactions.
func (tr *Trace) Txns() int64 { return int64(len(tr.types)) }

// Accesses returns the number of recorded tuple accesses.
func (tr *Trace) Accesses() int64 { return int64(len(tr.rels)) }

// Replay fills t with transaction i, reusing t.Accesses like
// workload.Generator.Next does.
func (tr *Trace) Replay(i int64, t *workload.Txn) {
	var start int64
	if i > 0 {
		start = tr.ends[i-1]
	}
	end := tr.ends[i]
	t.Type = tr.types[i]
	t.DeliverySkipped = 0
	t.Accesses = t.Accesses[:0]
	for k := start; k < end; k++ {
		t.Accesses = append(t.Accesses, core.Access{Rel: tr.rels[k], Tuple: int64(tr.tuples[k])})
	}
}

// RecordTrace generates and records txns transactions of the given workload.
func RecordTrace(cfg workload.Config, txns int64) (*Trace, error) {
	gen, err := workload.New(cfg)
	if err != nil {
		return nil, err
	}
	tr := &Trace{
		types: make([]core.TxnType, 0, txns),
		ends:  make([]int64, 0, txns),
	}
	var txn workload.Txn
	for i := int64(0); i < txns; i++ {
		gen.Next(&txn)
		tr.types = append(tr.types, txn.Type)
		for _, a := range txn.Accesses {
			if a.Tuple > math.MaxInt32 {
				return nil, fmt.Errorf("sim: tuple ordinal %d overflows trace encoding", a.Tuple)
			}
			tr.rels = append(tr.rels, a.Rel)
			tr.tuples = append(tr.tuples, int32(a.Tuple))
		}
		tr.ends = append(tr.ends, int64(len(tr.rels)))
	}
	return tr, nil
}

// traceKey identifies a reference stream. PageSize is normalized to zero:
// the tuple stream is independent of how tuples are later packed into
// pages, so 4K and 8K runs of the same workload share one trace.
type traceKey struct {
	cfg  workload.Config
	txns int64
}

func makeTraceKey(cfg workload.Config, txns int64) traceKey {
	cfg.DB.PageSize = 0
	return traceKey{cfg: cfg, txns: txns}
}

type traceEntry struct {
	once sync.Once
	tr   *Trace
	err  error
}

// TraceCache memoizes recorded traces by (workload config, length). It is
// safe for concurrent use; concurrent requests for the same key record the
// stream exactly once and share the result.
type TraceCache struct {
	mu sync.Mutex
	m  map[traceKey]*traceEntry
	// mapped memoizes pre-mapped forms per (trace, packing, page size);
	// see GetMapped in mapped.go.
	mapped map[mappedKey]*mappedEntry
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache { return &TraceCache{m: make(map[traceKey]*traceEntry)} }

// Get returns the memoized trace of txns transactions of cfg, recording it
// on first use.
func (c *TraceCache) Get(cfg workload.Config, txns int64) (*Trace, error) {
	key := makeTraceKey(cfg, txns)
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &traceEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.tr, e.err = RecordTrace(cfg, txns) })
	return e.tr, e.err
}

// SharedTraces is the process-wide trace cache used by the experiment
// pipeline.
var SharedTraces = NewTraceCache()
