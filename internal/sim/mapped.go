// Pre-mapped traces. A sweep grid replays one recorded tuple stream into
// many cells, and every cell sharing a (packing, page size) pair performs
// the identical tuple-to-page translation per access. MapPages performs
// that translation once, producing a stream of flat page ordinals that the
// dense stack-distance kernel consumes directly: no mapper call, no PageID
// construction, no hashing per access per cell. The TraceCache memoizes the
// mapped form per (trace, packing, page size) alongside the raw trace.
package sim

import (
	"fmt"
	"math"
	"sync"

	"tpccmodel/internal/core"
	"tpccmodel/internal/tpcc"
	"tpccmodel/internal/workload"
)

// ordinalMapper assigns every (relation, page) pair a dense flat ordinal.
// Statically sized relations own fixed contiguous ranges computed once from
// the schema (tpcc.Config.PageOrdinalBases); the append-only relations form
// a growable tail segment starting at the static total, with ordinals
// handed out in first-appearance order. Within a growing relation, pages
// appear in increasing page-ordinal order (tuple ordinals are append-only),
// so the per-relation tail tables grow only at the end.
type ordinalMapper struct {
	base [core.NumRelations]int64   // static relations: flat base; growing: -1
	tail [core.NumRelations][]int64 // growing relations: page -> flat ordinal
	next int64                      // next unassigned tail ordinal
}

func newOrdinalMapper(db tpcc.Config) *ordinalMapper {
	bases, total := db.PageOrdinalBases()
	return &ordinalMapper{base: bases, next: total}
}

// ordinal returns the flat ordinal of page `page` of relation rel,
// assigning tail ordinals on first appearance.
func (o *ordinalMapper) ordinal(rel core.Relation, page int64) int64 {
	if b := o.base[rel]; b >= 0 {
		return b + page
	}
	t := o.tail[rel]
	if page >= int64(len(t)) {
		for p := int64(len(t)); p <= page; p++ {
			t = append(t, o.next)
			o.next++
		}
		o.tail[rel] = t
	}
	return t[page]
}

// universe returns one past the largest ordinal assigned so far.
func (o *ordinalMapper) universe() int64 { return o.next }

// MappedTrace is a recorded reference stream with the tuple-to-page packing
// already applied: access k touches flat page ordinal Pages()[k] of
// relation tr.Rels()[k]. It is immutable and safe for concurrent replay.
type MappedTrace struct {
	trace *Trace
	// pages holds flat page ordinals as int32: the TPC-C page universe of
	// any supported configuration (Table 1 static pages plus the pages the
	// append-only relations gain over the run) sits far below 2^31;
	// MapPages checks anyway.
	pages    []int32
	universe int64
}

// Trace returns the underlying tuple trace (transaction types and bounds).
func (mt *MappedTrace) Trace() *Trace { return mt.trace }

// Txns returns the number of recorded transactions.
func (mt *MappedTrace) Txns() int64 { return mt.trace.Txns() }

// Accesses returns the number of recorded page accesses.
func (mt *MappedTrace) Accesses() int64 { return int64(len(mt.pages)) }

// Universe returns the size of the flat page-ordinal space: every ordinal
// in the trace lies in [0, Universe()).
func (mt *MappedTrace) Universe() int64 { return mt.universe }

// MapPages translates the trace's tuple ordinals to flat page ordinals for
// one packing (the per-relation mappers) and page size (db). The result
// replays through the dense kernel without touching the mappers again; one
// mapped trace serves every sweep cell sharing the packing and page size.
func (tr *Trace) MapPages(mappers Mappers, db tpcc.Config) (*MappedTrace, error) {
	om := newOrdinalMapper(db)
	pages := make([]int32, len(tr.rels))
	for k, rel := range tr.rels {
		ord := om.ordinal(rel, mappers[rel].Page(int64(tr.tuples[k])))
		if ord > math.MaxInt32 {
			return nil, fmt.Errorf("sim: page ordinal %d overflows mapped-trace encoding", ord)
		}
		pages[k] = int32(ord)
	}
	return &MappedTrace{trace: tr, pages: pages, universe: om.universe()}, nil
}

// mappedKey identifies one translated form of a trace: the underlying
// stream key plus everything the translation depends on. The packing seed
// is part of cfg inside traceKey, so shuffled packings key correctly; the
// page size is restored here (traceKey normalizes it away).
type mappedKey struct {
	k        traceKey
	packing  Packing
	pageSize int
}

type mappedEntry struct {
	once sync.Once
	mt   *MappedTrace
	err  error
}

// GetMapped returns the memoized pre-mapped form of the cfg/txns trace for
// one packing strategy, recording the trace and performing the translation
// each at most once. Safe for concurrent use.
func (c *TraceCache) GetMapped(cfg workload.Config, txns int64, p Packing) (*MappedTrace, error) {
	tr, err := c.Get(cfg, txns)
	if err != nil {
		return nil, err
	}
	key := mappedKey{k: makeTraceKey(cfg, txns), packing: p, pageSize: cfg.DB.PageSize}
	c.mu.Lock()
	if c.mapped == nil {
		c.mapped = make(map[mappedKey]*mappedEntry)
	}
	e, ok := c.mapped[key]
	if !ok {
		e = &mappedEntry{}
		c.mapped[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		mappers := BuildMappers(cfg.DB, p, cfg.Seed)
		e.mt, e.err = tr.MapPages(mappers, cfg.DB)
	})
	return e.mt, e.err
}
