package sim

import (
	"sync"
	"testing"

	"tpccmodel/internal/workload"
)

// benchCurve is the macro-benchmark fixture: one recorded trace plus its
// pre-mapped form, shared across iterations so the benchmarks time the
// kernel, not trace recording.
var benchCurve struct {
	once sync.Once
	cc   CurveConfig
	tr   *Trace
	mt   *MappedTrace
	err  error
}

func benchSetup(b *testing.B) (CurveConfig, *Trace, *MappedTrace) {
	b.Helper()
	benchCurve.once.Do(func() {
		cfg := workload.DefaultConfig(2, 1993)
		cc := CurveConfig{
			Workload:        cfg,
			Packing:         PackSequential,
			CapacitiesPages: []int64{256, 1024, 4096, 8192, 16384, 32768},
			WarmupTxns:      2_000,
			Batches:         3,
			BatchTxns:       6_000,
			Level:           0.90,
		}
		tr, err := RecordTrace(cfg, cc.WarmupTxns+int64(cc.Batches)*cc.BatchTxns)
		if err != nil {
			benchCurve.err = err
			return
		}
		mappers := BuildMappers(cfg.DB, cc.Packing, cfg.Seed)
		mt, err := tr.MapPages(mappers, cfg.DB)
		if err != nil {
			benchCurve.err = err
			return
		}
		benchCurve.cc, benchCurve.tr, benchCurve.mt = cc, tr, mt
	})
	if benchCurve.err != nil {
		b.Fatal(benchCurve.err)
	}
	return benchCurve.cc, benchCurve.tr, benchCurve.mt
}

// BenchmarkRunCurve times one full stack-distance simulation cell through
// both kernels: the seed kernel (map-based StackSim, per-access mapper and
// PageID calls, binary-searched capacity buckets) and the dense kernel
// (pre-mapped flat ordinals, DenseStackSim, O(1) capacity lookup).
// `make bench-kernel` records the measured ratio in BENCH_kernel.json.
func BenchmarkRunCurve(b *testing.B) {
	cc, tr, mt := benchSetup(b)

	b.Run("seed-kernel", func(b *testing.B) {
		b.ReportAllocs()
		cfg := cc
		cfg.Trace = tr
		for i := 0; i < b.N; i++ {
			if _, err := RunCurve(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dense-premapped", func(b *testing.B) {
		b.ReportAllocs()
		cfg := cc
		cfg.Mapped = mt
		for i := 0; i < b.N; i++ {
			if _, err := RunCurve(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMapPages times the one-off translation a sweep amortizes across
// its cells, for scale against BenchmarkRunCurve.
func BenchmarkMapPages(b *testing.B) {
	cc, tr, _ := benchSetup(b)
	mappers := BuildMappers(cc.Workload.DB, cc.Packing, cc.Workload.Seed)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tr.MapPages(mappers, cc.Workload.DB); err != nil {
			b.Fatal(err)
		}
	}
}
