package sim

import (
	"math"
	"testing"

	"tpccmodel/internal/core"
	"tpccmodel/internal/tpcc"
	"tpccmodel/internal/workload"
)

func smallCurveConfig(warehouses int, packing Packing) CurveConfig {
	return CurveConfig{
		Workload:        workload.DefaultConfig(warehouses, 42),
		Packing:         packing,
		CapacitiesPages: []int64{256, 1024, 4096, 16384},
		WarmupTxns:      2000,
		Batches:         5,
		BatchTxns:       2000,
		Level:           0.90,
	}
}

func TestParsePacking(t *testing.T) {
	for _, s := range []string{"sequential", "optimized", "shuffled"} {
		p, err := ParsePacking(s)
		if err != nil || p.String() != s {
			t.Errorf("ParsePacking(%q) = %v, %v", s, p, err)
		}
	}
	if _, err := ParsePacking("bogus"); err == nil {
		t.Error("bogus packing should fail")
	}
}

func TestBuildMappersCoversAllRelations(t *testing.T) {
	db := tpcc.Config{Warehouses: 2, PageSize: 4096}
	for _, p := range []Packing{PackSequential, PackOptimized, PackShuffled} {
		m := BuildMappers(db, p, 1)
		for _, rel := range core.Relations() {
			if m[rel] == nil {
				t.Fatalf("%v: no mapper for %s", p, rel)
			}
			if pg := m[rel].Page(0); pg < 0 {
				t.Errorf("%v/%s: Page(0) = %d", p, rel, pg)
			}
		}
	}
}

func TestCurveConfigValidate(t *testing.T) {
	good := smallCurveConfig(1, PackSequential)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.CapacitiesPages = nil
	if err := bad.Validate(); err == nil {
		t.Error("no capacities should fail")
	}
	bad = good
	bad.CapacitiesPages = []int64{0}
	if err := bad.Validate(); err == nil {
		t.Error("zero capacity should fail")
	}
	bad = good
	bad.Batches = 1
	if err := bad.Validate(); err == nil {
		t.Error("single batch should fail")
	}
	bad = good
	bad.Level = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("bad level should fail")
	}
}

func TestRunCurveBasics(t *testing.T) {
	res, err := RunCurve(smallCurveConfig(1, PackSequential))
	if err != nil {
		t.Fatal(err)
	}
	// Warehouse and district must have ~zero miss rates at any size (the
	// paper: they always fit in the buffer).
	for _, rel := range []core.Relation{core.Warehouse, core.District} {
		if mr := res.MissRate(rel, 256); mr > 0.01 {
			t.Errorf("%s miss rate %v, want ~0", rel, mr)
		}
	}
	// Miss rates decrease with buffer size.
	for _, rel := range []core.Relation{core.Stock, core.Customer} {
		prev := 1.1
		for _, c := range res.Caps {
			mr := res.MissRate(rel, c)
			if mr > prev+1e-12 {
				t.Errorf("%s miss rate not monotone at %d pages", rel, c)
			}
			prev = mr
		}
	}
	// Stock is NURand-skewed, so a healthy buffer captures hot pages:
	// miss rate at 16384 pages (64MB) must be well below 1 for a single
	// warehouse (7693 stock pages in total).
	if mr := res.MissRate(core.Stock, 16384); mr > 0.05 {
		t.Errorf("stock miss rate at 64MB = %v for 1 warehouse", mr)
	}
}

func TestRunCurveCIs(t *testing.T) {
	res, err := RunCurve(smallCurveConfig(1, PackSequential))
	if err != nil {
		t.Fatal(err)
	}
	iv, err := res.MissRateCI(core.Stock, 1)
	if err != nil {
		t.Fatal(err)
	}
	if iv.N != 5 {
		t.Errorf("CI over %d batches, want 5", iv.N)
	}
	if iv.Mean <= 0 || iv.Mean >= 1 {
		t.Errorf("stock miss rate mean %v implausible", iv.Mean)
	}
	// The CI mean and the full-resolution curve should agree closely
	// (same accesses, same predicate).
	curve := res.MissRate(core.Stock, res.Caps[1])
	if math.Abs(iv.Mean-curve) > 0.02 {
		t.Errorf("batch-mean %v vs curve %v at same capacity", iv.Mean, curve)
	}
}

func TestBatchDiagnostics(t *testing.T) {
	res, err := RunCurve(smallCurveConfig(1, PackSequential))
	if err != nil {
		t.Fatal(err)
	}
	lag1, _ := res.BatchDiagnostics(core.Stock, 1)
	if lag1 < -1 || lag1 > 1 {
		t.Errorf("lag-1 autocorrelation out of [-1,1]: %v", lag1)
	}
	// With only 5 batches the white-noise band is wide (~0.89); the
	// stock miss rates should not be pathologically trending.
	if lag1 > 0.95 {
		t.Errorf("stock batch means look like a trend (r1=%v); batch size too small", lag1)
	}
}

// TestOptimizedBeatsSequential reproduces the paper's central Figure 8
// result in miniature: optimized packing yields lower miss rates for the
// skewed relations at intermediate buffer sizes.
func TestOptimizedBeatsSequential(t *testing.T) {
	seqRes, err := RunCurve(smallCurveConfig(1, PackSequential))
	if err != nil {
		t.Fatal(err)
	}
	optRes, err := RunCurve(smallCurveConfig(1, PackOptimized))
	if err != nil {
		t.Fatal(err)
	}
	// At an intermediate size (4096 pages = 16MB for 1 warehouse) the
	// skewed relations benefit materially.
	for _, rel := range []core.Relation{core.Stock, core.Customer} {
		seq := seqRes.MissRate(rel, 4096)
		opt := optRes.MissRate(rel, 4096)
		if opt >= seq {
			t.Errorf("%s: optimized %.4f should beat sequential %.4f", rel, opt, seq)
		}
	}
}

func TestTxnRelMissRates(t *testing.T) {
	res, err := RunCurve(smallCurveConfig(1, PackSequential))
	if err != nil {
		t.Fatal(err)
	}
	// New-Order touches stock; Stock-Level touches stock via the join;
	// Payment never touches stock.
	if res.TxnRelAccesses(core.TxnNewOrder, core.Stock) == 0 {
		t.Error("New-Order should access stock")
	}
	if res.TxnRelAccesses(core.TxnStockLevel, core.Stock) == 0 {
		t.Error("Stock-Level should access stock")
	}
	if got := res.TxnRelAccesses(core.TxnPayment, core.Stock); got != 0 {
		t.Errorf("Payment accessed stock %d times", got)
	}
	if mr := res.TxnRelMissRate(core.TxnPayment, core.Stock, 0); mr != 0 {
		t.Errorf("miss rate for untouched relation = %v", mr)
	}
	// Stock-Level's stock accesses are for recently ordered items, but
	// under a small buffer they can still miss; rate must be in [0,1].
	mr := res.TxnRelMissRate(core.TxnStockLevel, core.Stock, 0)
	if mr < 0 || mr > 1 {
		t.Errorf("stock-level stock miss rate = %v", mr)
	}
	// Larger buffers can only help.
	last := len(res.Caps) - 1
	if res.TxnRelMissRate(core.TxnStockLevel, core.Stock, last) > mr+1e-9 {
		t.Error("txn-rel miss rate should not increase with capacity")
	}
}

// TestRecencyLocality checks the paper's Table 3 claim that P() accesses
// (tuples recently placed in the buffer by New-Order) enjoy better hit
// rates: order-line accesses by Delivery should hit more often than stock
// accesses by New-Order at the same modest buffer size.
func TestRecencyLocality(t *testing.T) {
	res, err := RunCurve(smallCurveConfig(1, PackSequential))
	if err != nil {
		t.Fatal(err)
	}
	delOL := res.TxnRelMissRate(core.TxnDelivery, core.OrderLine, 2)
	noStock := res.TxnRelMissRate(core.TxnNewOrder, core.Stock, 2)
	if delOL >= noStock {
		t.Errorf("Delivery order-line miss %.4f should be below New-Order stock miss %.4f",
			delOL, noStock)
	}
}

func TestRunDirectMatchesCurveAtCapacity(t *testing.T) {
	// The direct LRU simulation and the stack-distance curve must agree
	// (same generator seed => identical streams; inclusion property =>
	// identical hit predicate).
	const pages = 2048
	wl := workload.DefaultConfig(1, 77)
	direct, err := Run(Config{
		Workload: wl, Packing: PackSequential, Policy: "lru",
		BufferPages: pages, WarmupTxns: 1000, Batches: 4, BatchTxns: 1500, Level: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	curve, err := RunCurve(CurveConfig{
		Workload: wl, Packing: PackSequential,
		CapacitiesPages: []int64{pages},
		WarmupTxns:      1000, Batches: 4, BatchTxns: 1500, Level: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []core.Relation{core.Stock, core.Customer, core.Item, core.OrderLine} {
		d := direct.PerRelation[rel].MissRate()
		c := curve.MissRate(rel, pages)
		if math.Abs(d-c) > 1e-12 {
			t.Errorf("%s: direct %v != curve %v", rel, d, c)
		}
	}
	if math.Abs(direct.Overall.MissRate()-curve.Overall.MissRate(pages)) > 1e-12 {
		t.Error("overall miss rates disagree")
	}
}

func TestRunDirectPolicies(t *testing.T) {
	wl := workload.DefaultConfig(1, 5)
	for _, policy := range []string{"lru", "clock", "2q"} {
		res, err := Run(Config{
			Workload: wl, Packing: PackSequential, Policy: policy,
			BufferPages: 1024, WarmupTxns: 500, Batches: 3, BatchTxns: 800, Level: 0.9,
		})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if res.Overall.Accesses == 0 {
			t.Fatalf("%s: no accesses recorded", policy)
		}
		mr := res.Overall.MissRate()
		if mr <= 0 || mr >= 1 {
			t.Errorf("%s: overall miss rate %v implausible", policy, mr)
		}
	}
	if _, err := Run(Config{
		Workload: wl, Packing: PackSequential, Policy: "bogus",
		BufferPages: 10, Batches: 2, BatchTxns: 10, Level: 0.9,
	}); err == nil {
		t.Error("bogus policy should fail")
	}
}

func TestPagesForBytes(t *testing.T) {
	if got := PagesForBytes(52*1024*1024, 4096); got != 13312 {
		t.Errorf("52MB = %d pages, want 13312", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("zero page size should panic")
		}
	}()
	PagesForBytes(100, 0)
}

func TestConfigValidate(t *testing.T) {
	good := Config{
		Workload: workload.DefaultConfig(1, 1), Packing: PackSequential,
		Policy: "lru", BufferPages: 10, Batches: 2, BatchTxns: 5, Level: 0.9,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.BufferPages = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero buffer should fail")
	}
}
