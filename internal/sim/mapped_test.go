package sim

import (
	"testing"

	"tpccmodel/internal/core"
	"tpccmodel/internal/workload"
)

func testCurveConfig(t *testing.T, p Packing, pageSize int) (CurveConfig, *Trace) {
	t.Helper()
	cfg := workload.DefaultConfig(1, 11)
	cfg.DB.PageSize = pageSize
	cc := CurveConfig{
		Workload:        cfg,
		Packing:         p,
		CapacitiesPages: []int64{64, 512, 2048, 8192},
		WarmupTxns:      500,
		Batches:         3,
		BatchTxns:       1500,
		Level:           0.90,
	}
	tr, err := RecordTrace(cfg, cc.WarmupTxns+int64(cc.Batches)*cc.BatchTxns)
	if err != nil {
		t.Fatal(err)
	}
	return cc, tr
}

// requireCurveResultsEqual compares every observable of two CurveResults.
func requireCurveResultsEqual(t *testing.T, label string, seed, mapped *CurveResult) {
	t.Helper()
	for rel := core.Relation(0); rel < core.NumRelations; rel++ {
		for c := int64(0); c < 10000; c += 97 {
			if a, b := seed.MissRate(rel, c), mapped.MissRate(rel, c); a != b {
				t.Fatalf("%s: %s MissRate(%d): seed %v, mapped %v", label, rel, c, a, b)
			}
		}
		if seed.RelAccesses(rel) != mapped.RelAccesses(rel) {
			t.Fatalf("%s: %s accesses differ", label, rel)
		}
		for i := range seed.Caps {
			sa, errA := seed.MissRateCI(rel, i)
			sb, errB := mapped.MissRateCI(rel, i)
			if (errA == nil) != (errB == nil) || sa != sb {
				t.Fatalf("%s: %s CI at cap %d: seed %+v (%v), mapped %+v (%v)",
					label, rel, i, sa, errA, sb, errB)
			}
		}
	}
	for c := int64(0); c < 10000; c += 97 {
		if a, b := seed.Overall.MissRate(c), mapped.Overall.MissRate(c); a != b {
			t.Fatalf("%s: overall MissRate(%d): seed %v, mapped %v", label, c, a, b)
		}
	}
	if seed.Overall.Accesses() != mapped.Overall.Accesses() ||
		seed.Overall.ColdMisses() != mapped.Overall.ColdMisses() ||
		seed.Overall.MaxDistance() != mapped.Overall.MaxDistance() {
		t.Fatalf("%s: overall curve shape differs", label)
	}
	for typ := core.TxnType(0); typ < core.NumTxnTypes; typ++ {
		if seed.TxnCount(typ) != mapped.TxnCount(typ) {
			t.Fatalf("%s: %s txn count differs", label, typ)
		}
		for i := range seed.Caps {
			if a, b := seed.TxnIOs(typ, i), mapped.TxnIOs(typ, i); a != b {
				t.Fatalf("%s: %s TxnIOs at cap %d: seed %v, mapped %v", label, typ, i, a, b)
			}
			for rel := core.Relation(0); rel < core.NumRelations; rel++ {
				if a, b := seed.TxnRelMissRate(typ, rel, i), mapped.TxnRelMissRate(typ, rel, i); a != b {
					t.Fatalf("%s: %s/%s miss rate at cap %d: seed %v, mapped %v",
						label, typ, rel, i, a, b)
				}
			}
		}
	}
}

// TestMappedReplayMatchesSeedKernel is the whole-kernel differential test:
// for every packing strategy and both page sizes, replaying the pre-mapped
// trace through the dense engine must reproduce the seed engine's results
// exactly — every curve point, every confidence interval, every
// per-transaction I/O count.
func TestMappedReplayMatchesSeedKernel(t *testing.T) {
	for _, pageSize := range []int{4096, 8192} {
		for _, p := range []Packing{PackSequential, PackOptimized, PackShuffled} {
			cc, tr := testCurveConfig(t, p, pageSize)

			seedCfg := cc
			seedCfg.Trace = tr
			seedRes, err := RunCurve(seedCfg)
			if err != nil {
				t.Fatal(err)
			}

			mappers := BuildMappers(cc.Workload.DB, p, cc.Workload.Seed)
			mt, err := tr.MapPages(mappers, cc.Workload.DB)
			if err != nil {
				t.Fatal(err)
			}
			mappedCfg := cc
			mappedCfg.Mapped = mt
			mappedRes, err := RunCurve(mappedCfg)
			if err != nil {
				t.Fatal(err)
			}

			label := p.String() + "/" + map[int]string{4096: "4K", 8192: "8K"}[pageSize]
			requireCurveResultsEqual(t, label, seedRes, mappedRes)
		}
	}
}

// TestMapPagesOrdinalSpace checks the flat ordinal layout: static-relation
// ordinals stay inside their schema-computed ranges, growing-relation
// ordinals start at the static total, and the universe bounds everything.
func TestMapPagesOrdinalSpace(t *testing.T) {
	cc, tr := testCurveConfig(t, PackSequential, 4096)
	mappers := BuildMappers(cc.Workload.DB, PackSequential, cc.Workload.Seed)
	mt, err := tr.MapPages(mappers, cc.Workload.DB)
	if err != nil {
		t.Fatal(err)
	}
	bases, staticTotal := cc.Workload.DB.PageOrdinalBases()
	if mt.Universe() < staticTotal {
		t.Fatalf("universe %d < static total %d", mt.Universe(), staticTotal)
	}
	if mt.Accesses() != tr.Accesses() {
		t.Fatalf("mapped %d accesses, trace has %d", mt.Accesses(), tr.Accesses())
	}
	for k, rel := range tr.rels {
		ord := int64(mt.pages[k])
		if ord < 0 || ord >= mt.Universe() {
			t.Fatalf("access %d: ordinal %d outside [0, %d)", k, ord, mt.Universe())
		}
		if base := bases[rel]; base >= 0 {
			span := cc.Workload.DB.PackedPageSpan(rel)
			if ord < base || ord >= base+span {
				t.Fatalf("access %d: static %s ordinal %d outside [%d, %d)",
					k, rel, ord, base, base+span)
			}
		} else if ord < staticTotal {
			t.Fatalf("access %d: growing %s ordinal %d inside static range [0, %d)",
				k, rel, ord, staticTotal)
		}
	}
}

// TestGetMappedMemoizes checks that the cache returns one shared mapped
// trace per (workload, packing, page size) and distinct ones across
// packings and page sizes.
func TestGetMappedMemoizes(t *testing.T) {
	cache := NewTraceCache()
	cfg := workload.DefaultConfig(1, 5)
	const txns = 300

	a, err := cache.GetMapped(cfg, txns, PackSequential)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.GetMapped(cfg, txns, PackSequential)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same key returned distinct mapped traces")
	}
	c, err := cache.GetMapped(cfg, txns, PackOptimized)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different packings shared a mapped trace")
	}
	cfg8 := cfg
	cfg8.DB.PageSize = 8192
	d, err := cache.GetMapped(cfg8, txns, PackSequential)
	if err != nil {
		t.Fatal(err)
	}
	if d == a {
		t.Error("different page sizes shared a mapped trace")
	}
	if a.Trace() != d.Trace() {
		t.Error("page sizes must share the underlying tuple trace")
	}
}
