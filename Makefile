# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race alloc-gate bench bench-sweep bench-kernel bench-commit bench-engine \
	bench-scale bench-cc cc-smoke torture shard-torture shard-xval repro repro-full fuzz xval \
	cover regen-golden regen-fuzz-corpus clean

all: build test

build:
	go build ./...
	go vet ./...

# The race leg carries an explicit -timeout: the engine/shard package
# loads several 3-shard clusters and the race detector's ~10-20x
# slowdown pushes it past go test's default 10m on a 1-core runner.
test:
	go vet ./...
	go test ./...
	go test -race -short -timeout 30m ./internal/engine/...

race:
	go test -race -timeout 60m ./...

# Hot-path allocation gate (also part of `make test`): committed New-Order
# and Payment transactions must heap-allocate nothing. Race-free leg only —
# AllocsPerRun is unreliable under the race detector, so the test carries
# a !race build tag.
alloc-gate:
	go test ./internal/engine/db/ -run TestHotPathAllocationFree -v

# Engine<->model cross-validation: run the TPC-C mix on the real engine
# with the buffer reference stream tapped, replay it through the LRU stack
# simulation (must match the engine bit for bit), and compare both against
# the synthetic simulation and Che's closed form. Exits 1 on disagreement.
xval:
	go run ./cmd/tpcc-xval -out results-xval

# Per-package statement-coverage floors (internal/buffer, internal/sim,
# internal/engine/bufmgr); leaves the merged profile in coverage.out.
cover:
	./scripts/coverfloor.sh

# Rewrite the checked-in golden sweep TSVs (internal/experiments/testdata/
# golden/) from a serial dense-kernel render. Only after an intentional
# output change; say why in the commit.
regen-golden:
	go test ./internal/experiments/ -run TestGoldenCorpus -regen-golden -v

# Rewrite the checked-in fuzz seed corpora (testdata/fuzz/<FuzzName>/)
# from their generators in the wal and index packages.
regen-fuzz-corpus:
	go test ./internal/engine/wal/ -run TestFuzzSeedCorpus -regen-fuzz-corpus -v
	go test ./internal/engine/index/ -run TestFuzzSeedCorpus -regen-fuzz-corpus -v
	go test ./internal/engine/mvcc/ -run TestFuzzSeedCorpus -regen-fuzz-corpus -v

# Seeded crash-torture campaign over the storage engine: 5 seeds x 10
# crash schedules with transient I/O errors, bit flips, torn writes, and
# power loss; fails on any lost commit, consistency or checksum violation.
torture:
	go run ./cmd/tpcc-torture -v

# Shard-kill torture over the warehouse-sharded cluster: kills at 2PC
# protocol points (mid-prepare, post-prepare, pre-participant-commit,
# during in-doubt resolution), cluster-wide power loss, recovery, and
# resolution; fails on any lost acked commit, orphaned in-doubt branch,
# broken cross-shard atomicity, or consistency violation. The reduced
# campaign doubles as the CI smoke step; the -race leg reruns the
# in-process reduced campaign under the race detector.
shard-torture:
	go run ./cmd/tpcc-shard -torture -seeds 2 -schedules 4 -txns 200 -workers 4 -v
	go test -race -short -run TestShardTortureReduced ./internal/engine/shard/

# Appendix A cross-shard validation gate: drive a real 3-shard cluster
# with elevated remote probabilities and compare the measured remote-call
# rates against model.DistConfig.Expect() (Tables 6/7). Exits 1 on
# disagreement.
shard-xval:
	go run ./cmd/tpcc-shard -xval -shards 3 -txns 4000 -remote-stock 0.1 -remote-pay 0.3

bench:
	go test -bench=. -benchmem ./...

# Time the ablation sweep at 1/2/4/8 workers and record serial-equivalence
# plus speedup in BENCH_sweep.json.
bench-sweep:
	go run ./cmd/tpcc-repro -bench-sweep BENCH_sweep.json

# Time the stack-distance kernel (seed map-based vs dense pre-mapped) on one
# reduced-scale cell and record output-equivalence plus speedup in
# BENCH_kernel.json.
bench-kernel:
	go run ./cmd/tpcc-repro -bench-kernel BENCH_kernel.json

# Compare per-commit force vs leader/follower group commit at 1/2/4/8
# workers and record throughput, commit-latency quantiles, and
# forces-per-commit in BENCH_commit.json.
bench-commit:
	go run ./cmd/tpcc-engine -bench-commit BENCH_commit.json

# Engine throughput-vs-workers benchmark: the same grouped-vs-ungrouped
# grid with the whole warehouse buffer-resident, measuring the hot
# execution path (txns/sec, allocs/txn) rather than pool churn; records
# BENCH_engine.json.
bench-engine:
	go run ./cmd/tpcc-engine -bench-engine BENCH_engine.json

# Multi-core scalability grid: workers x {striped, global-mutex lock
# manager} x {partitioned, unified buffer pool}, with hardware metadata so
# the recorded curve carries its core count; records BENCH_scale.json.
bench-scale:
	go run ./cmd/tpcc-engine -bench-scale BENCH_scale.json

# Concurrency-control grid: {2pl, mvcc, ssi} x 1/2/4/8 workers with per-type
# abort rates, write-conflict counts, and latency quantiles; records
# BENCH_cc.json (single-worker cells also record the state hash the
# differential gate compares).
bench-cc:
	go run ./cmd/tpcc-engine -bench-cc BENCH_cc.json

# CI gate for the snapshot CC paths: write skew must be admitted under
# mvcc and refused under 2pl/ssi, single-worker committed state must be
# byte-identical across all three modes, mvcc/ssi throughput within 10% of 2PL at 1
# worker, read-only types conflict-free at every worker count.
cc-smoke:
	go run ./cmd/tpcc-engine -cc-smoke -bench-file BENCH_cc.json

# Reduced-scale reproduction of every table and figure (seconds).
repro:
	go run ./cmd/tpcc-repro -scale reduced -out results-reduced

# Paper-scale reproduction: 20 warehouses, 30x100K transactions (minutes).
repro-full:
	go run ./cmd/tpcc-repro -scale full -out results

# Short fuzzing passes over the parsers and core data structures.
fuzz:
	go test -fuzz FuzzDecodeRecord -fuzztime 30s ./internal/engine/wal/
	go test -fuzz FuzzLogMutation -fuzztime 30s ./internal/engine/wal/
	go test -fuzz Fuzz2PCLog -fuzztime 30s ./internal/engine/wal/
	go test -fuzz FuzzBTreeOps -fuzztime 30s ./internal/engine/index/
	go test -fuzz FuzzExactPMFPaths -fuzztime 30s ./internal/nurand/
	go test -fuzz FuzzVisibility -fuzztime 30s ./internal/engine/mvcc/

clean:
	rm -rf results-reduced results-xval coverage.out
