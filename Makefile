# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race bench repro repro-full fuzz clean

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Reduced-scale reproduction of every table and figure (seconds).
repro:
	go run ./cmd/tpcc-repro -scale reduced -out results-reduced

# Paper-scale reproduction: 20 warehouses, 30x100K transactions (minutes).
repro-full:
	go run ./cmd/tpcc-repro -scale full -out results

# Short fuzzing passes over the parsers and core data structures.
fuzz:
	go test -fuzz FuzzDecodeRecord -fuzztime 30s ./internal/engine/wal/
	go test -fuzz FuzzBTreeOps -fuzztime 30s ./internal/engine/index/
	go test -fuzz FuzzExactPMFPaths -fuzztime 30s ./internal/nurand/

clean:
	rm -rf results-reduced
