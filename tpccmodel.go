// Package tpccmodel is a from-scratch Go reproduction of Leutenegger &
// Dias, "A Modeling Study of the TPC-C Benchmark" (SIGMOD '93): the NURand
// access-skew analysis, tuple-to-page packing strategies, LRU buffer
// simulation, and the throughput / price-performance / distributed
// scale-up models — plus an executable page-based storage engine running
// the five TPC-C transactions, which the paper models but never built.
//
// This package is the stable facade over the internal packages. Typical
// use:
//
//	// Quantify the stock relation's access skew (Figures 3-5).
//	pmf := tpccmodel.ExactPMF(tpccmodel.StockItemDistribution())
//	lz := tpccmodel.NewLorenz(pmf)
//	share := lz.AccessShareOfHottest(0.20) // ~0.84
//
//	// Regenerate the paper's evaluation at reduced scale.
//	study := tpccmodel.NewStudy(tpccmodel.ReducedOptions())
//	fig8, err := tpccmodel.Fig8(study)
//
//	// Run the real engine.
//	db, _ := tpccmodel.OpenEngine(tpccmodel.EngineConfig{
//		Warehouses: 1, PageSize: 4096, BufferPages: 8192,
//	})
//	_ = db.Load(1)
//
// The cmd/ tools print every figure and table; DESIGN.md maps each to its
// implementation and EXPERIMENTS.md records paper-vs-measured values.
package tpccmodel

import (
	"tpccmodel/internal/analytic"
	"tpccmodel/internal/core"
	"tpccmodel/internal/engine/db"
	"tpccmodel/internal/experiments"
	"tpccmodel/internal/model"
	"tpccmodel/internal/nurand"
	"tpccmodel/internal/queuesim"
	"tpccmodel/internal/sim"
	"tpccmodel/internal/stats"
	"tpccmodel/internal/tpcc"
	"tpccmodel/internal/workload"
)

// Relation identifies one of the nine TPC-C relations.
type Relation = core.Relation

// The nine TPC-C relations (paper Table 1).
const (
	Warehouse = core.Warehouse
	District  = core.District
	Customer  = core.Customer
	Stock     = core.Stock
	Item      = core.Item
	Order     = core.Order
	NewOrder  = core.NewOrder
	OrderLine = core.OrderLine
	History   = core.History
)

// TxnType identifies one of the five TPC-C transaction types.
type TxnType = core.TxnType

// The five transaction types (paper Table 2).
const (
	TxnNewOrder    = core.TxnNewOrder
	TxnPayment     = core.TxnPayment
	TxnOrderStatus = core.TxnOrderStatus
	TxnDelivery    = core.TxnDelivery
	TxnStockLevel  = core.TxnStockLevel
)

// NURandParams identifies one NU(A, x, y) distribution.
type NURandParams = nurand.Params

// StockItemDistribution returns NU(8191, 1, 100000), the item/stock-id
// distribution.
func StockItemDistribution() NURandParams { return nurand.ItemID }

// CustomerIDDistribution returns NU(1023, 1, 3000), the customer-id
// distribution.
func CustomerIDDistribution() NURandParams { return nurand.CustomerID }

// ExactPMF computes the exact probability mass function of an NU
// distribution (Section 3 / Appendix A.3).
func ExactPMF(p NURandParams) []float64 { return nurand.ExactPMF(p) }

// SamplePMF estimates the PMF by Monte Carlo, as the paper did.
func SamplePMF(p NURandParams, samples int64, seed uint64) []float64 {
	return nurand.SamplePMF(p, samples, seed)
}

// CustomerAccessPMF returns the customer relation's within-district access
// distribution: the paper's 41.86% by-id / 58.14% by-name mixture.
func CustomerAccessPMF() []float64 { return nurand.CustomerMixture().ExactPMF() }

// Lorenz quantifies access skew ("x% of accesses go to y% of the data").
type Lorenz = stats.Lorenz

// NewLorenz builds a skew curve from access weights (e.g. a PMF).
func NewLorenz(weights []float64) *Lorenz { return stats.NewLorenz(weights) }

// DBConfig fixes the database scale and page size.
type DBConfig = tpcc.Config

// Mix is the transaction mix.
type Mix = tpcc.Mix

// DefaultMix returns the paper's 43/44/4/5/4 mix.
func DefaultMix() Mix { return tpcc.DefaultMix() }

// WorkloadConfig parameterizes the TPC-C reference-stream generator.
type WorkloadConfig = workload.Config

// DefaultWorkload returns the paper's workload at the given scale.
func DefaultWorkload(warehouses int, seed uint64) WorkloadConfig {
	return workload.DefaultConfig(warehouses, seed)
}

// Packing selects the tuple-to-page strategy (Section 3).
type Packing = sim.Packing

// Packing strategies.
const (
	PackSequential = sim.PackSequential
	PackOptimized  = sim.PackOptimized
	PackShuffled   = sim.PackShuffled
)

// MissCurveConfig parameterizes the single-pass buffer simulation.
type MissCurveConfig = sim.CurveConfig

// MissCurveResult holds exact miss-rate-vs-buffer-size curves.
type MissCurveResult = sim.CurveResult

// RunMissCurve runs the LRU stack-distance simulation (Section 4): one
// pass yields the exact miss rate for every buffer size.
func RunMissCurve(cfg MissCurveConfig) (*MissCurveResult, error) { return sim.RunCurve(cfg) }

// DirectSimConfig parameterizes a fixed-size simulation with a concrete
// replacement policy ("lru", "fifo", "clock", "lfu", "2q", "slru").
type DirectSimConfig = sim.Config

// RunDirectSim runs a fixed-capacity buffer simulation.
func RunDirectSim(cfg DirectSimConfig) (*sim.Result, error) { return sim.Run(cfg) }

// SystemParams fix the modeled machine (Table 4 overheads, MIPS,
// utilization caps).
type SystemParams = model.SystemParams

// DefaultSystemParams returns the paper's 10 MIPS / 80% CPU / 50% disk
// operating point with the reconstructed Table 4 overheads.
func DefaultSystemParams() SystemParams { return model.DefaultSystemParams() }

// CostModel is the Figure 10 hardware cost model.
type CostModel = model.CostModel

// DefaultCostModel returns $5000 per 3GB disk, $10000 CPU, $100/MB memory.
func DefaultCostModel() CostModel { return model.DefaultCostModel() }

// Demands couple the buffer simulation to the throughput model.
type Demands = model.Demands

// DemandsAt extracts per-transaction demands from a miss-curve result at
// evaluation capacity index capIdx.
func DemandsAt(res *MissCurveResult, capIdx int) Demands {
	return model.DemandsFromCurve(res, capIdx)
}

// Throughput is a model operating point.
type Throughput = model.Throughput

// MaxThroughput solves for the throughput at the CPU utilization cap
// (Section 5.1).
func MaxThroughput(p SystemParams, d Demands) Throughput {
	return model.MaxThroughput(p, d, nil)
}

// DistConfig describes a distributed configuration (Section 5.3).
type DistConfig = model.DistConfig

// DefaultDistConfig returns the benchmark's remote probabilities.
func DefaultDistConfig(nodes int, itemReplicated bool) DistConfig {
	return model.DefaultDistConfig(nodes, itemReplicated)
}

// Scaleup evaluates total throughput across node counts (Figure 11).
func Scaleup(p SystemParams, d Demands, base DistConfig, nodes []int) []model.ScaleupPoint {
	return model.Scaleup(p, d, base, nodes)
}

// Study caches buffer-simulation runs shared by the figure generators.
type Study = experiments.Study

// StudyOptions scale the simulation-backed experiments.
type StudyOptions = experiments.Options

// FullScaleOptions returns the paper's scale (20 warehouses, 30x100K).
func FullScaleOptions() StudyOptions { return experiments.FullScale() }

// ReducedOptions returns a laptop-fast scale preserving curve shapes.
func ReducedOptions() StudyOptions { return experiments.Reduced() }

// NewStudy creates an experiment study.
func NewStudy(opts StudyOptions) *Study { return experiments.NewStudy(opts) }

// Series is a printable experiment result.
type Series = experiments.Series

// Experiment generators, one per paper table/figure. See DESIGN.md for the
// experiment index.
var (
	Table1         = experiments.Table1
	Fig3           = experiments.Fig3
	Fig4           = experiments.Fig4
	Fig5           = experiments.Fig5
	Fig6           = experiments.Fig6
	Fig7           = experiments.Fig7
	SkewHeadlines  = experiments.SkewHeadlines
	Fig8           = experiments.Fig8
	Table3         = experiments.Table3
	Fig9           = experiments.Fig9
	Fig10          = experiments.Fig10
	Fig10Minima    = experiments.Fig10Minima
	Fig11          = experiments.Fig11
	Fig12          = experiments.Fig12
	Table4         = experiments.Table4
	Tables6and7    = experiments.Tables6and7
	PolicyAblation = experiments.PolicyAblation
)

// QueueSimConfig parameterizes the discrete-event queueing simulation that
// cross-validates the analytic response-time model.
type QueueSimConfig = queuesim.Config

// QueueSimResult reports the measured throughput, utilizations, and
// response times.
type QueueSimResult = queuesim.Result

// RunQueueSim runs the discrete-event CPU+disk simulation.
func RunQueueSim(cfg QueueSimConfig) (QueueSimResult, error) { return queuesim.Run(cfg) }

// ResponseTime estimates per-transaction mean response times at a given
// arrival rate (processor-sharing CPU + M/M/1 disk arms).
func ResponseTime(p SystemParams, d Demands, lambda float64, diskArms int) (model.ResponseTimes, error) {
	return model.ResponseTime(p, d, lambda, diskArms)
}

// AnalyticClass and AnalyticModel expose the Che/IRM closed-form buffer
// model: miss-rate curves from exact access distributions, no simulation.
type AnalyticClass = analytic.Class

// AnalyticModel is a normalized independent-reference model over pages.
type AnalyticModel = analytic.Model

// NewAnalyticModel builds a Che/IRM model from page classes.
func NewAnalyticModel(classes []AnalyticClass) (*AnalyticModel, error) {
	return analytic.NewModel(classes)
}

// EngineConfig sizes an executable engine instance.
type EngineConfig = db.Config

// Engine is the running TPC-C database (strict 2PL, WAL, LRU buffer).
type Engine = db.DB

// OpenEngine creates an empty engine instance; call Load to populate it
// per the benchmark's initial-population rules.
func OpenEngine(cfg EngineConfig) (*Engine, error) { return db.Open(cfg) }

// EngineNewOrderInput parameterizes Engine.NewOrder.
type EngineNewOrderInput = db.NewOrderInput

// EngineOrderItem is one requested line of a New-Order transaction.
type EngineOrderItem = db.OrderItem

// EngineDeliveryQueue executes Delivery transactions in deferred batch
// mode, as the benchmark permits and the paper notes.
type EngineDeliveryQueue = db.DeliveryQueue

// NewEngineDeliveryQueue starts a background delivery worker over d.
func NewEngineDeliveryQueue(d *Engine) *EngineDeliveryQueue {
	return db.NewDeliveryQueue(d)
}

// EngineRunner drives the engine with benchmark-distributed inputs.
type EngineRunner = db.Runner

// NewEngineRunner creates a driver over the engine.
func NewEngineRunner(d *Engine, seed uint64, mix Mix) *EngineRunner {
	return db.NewRunner(d, seed, mix)
}

// RunEngineConcurrent executes a mixed workload across worker goroutines.
func RunEngineConcurrent(d *Engine, seed uint64, mix Mix, total, workers int) error {
	return db.RunConcurrent(d, seed, mix, total, workers)
}
